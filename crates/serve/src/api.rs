//! The `/v1` API surface: request schemas, sample synthesis and response
//! building.
//!
//! A predict request names a model, a seed and an input — either a
//! `videosynth` sample spec (the server synthesizes the clip under the
//! model's generative world, exactly as the offline benches do) or raw
//! per-frame AU intensity vectors.  Responses carry the full chain output:
//! the AU description, the stress assessment with its confidence, and the
//! highlighted rationale mapped back to facial regions — explanation with
//! every prediction, the paper's central claim.
//!
//! Response bodies are built by pure functions of `(model, request)`, so a
//! request with a fixed seed gets a byte-identical response no matter how
//! it was batched or how many pool threads ran it.

use std::time::Instant;

use chain_reason::{ChainOutput, ChainStepper, StepOutcome};
use facs::au::{ActionUnit, AuSet, AuVector, NUM_AUS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use videosynth::video::{StressLabel, VideoSample};
use videosynth::world::{sample_video, Subject, WorldConfig};

use crate::json::{obj, Json};
use crate::registry::ModelEntry;

/// Hard cap on frames accepted in either input form.
pub const MAX_FRAMES: usize = 256;

/// Hard cap on `chain_repeats` — the per-request work-size knob.
pub const MAX_REPEATS: u32 = 8;

/// The one machine-readable error body every non-2xx response carries:
/// `{"error":{"code":…,"message":…,"retry_after"?:…}}`.
pub fn error_body(code: &str, message: &str, retry_after: Option<u64>) -> Json {
    let mut fields = vec![
        ("code".to_owned(), Json::String(code.to_owned())),
        ("message".to_owned(), Json::String(message.to_owned())),
    ];
    if let Some(secs) = retry_after {
        fields.push(("retry_after".to_owned(), Json::Number(secs as f64)));
    }
    obj(vec![("error", Json::Object(fields))])
}

/// A request the API rejected, with its HTTP status and stable error code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable code (`bad_request`, `model_not_found`, …).
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
}

impl ApiError {
    fn bad(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    /// Render as the unified error body.
    pub fn body(&self) -> Json {
        error_body(self.code, &self.message, None)
    }
}

/// A parsed predict request.
#[derive(Clone, Debug)]
pub struct PredictRequest {
    /// Registry model name.
    pub model: String,
    /// Request seed: the master of this request's seed streams.
    pub seed: u64,
    /// The clip to classify.
    pub video: VideoSample,
    /// Describe→assess→highlight passes to run before scoring (≥ 1).
    /// Extra passes add decode work without changing the answer — the
    /// knob mixed short/long serving loads are expressed with.
    pub repeats: u32,
}

/// A parsed explain request.
#[derive(Clone, Debug)]
pub struct ExplainRequest {
    /// The predict part (model, seed, clip).
    pub predict: PredictRequest,
    /// Which perturbation explainer to run.
    pub method: explainers::PerturbationMethod,
    /// Black-box evaluation budget.
    pub budget: usize,
    /// Cache scope: a fingerprint of `(model, input)` so repeated explain
    /// calls on the same clip share mask evaluations.
    pub scope: u64,
}

/// FNV-1a over bytes — stable fingerprint for cache scoping.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad("body is not UTF-8"))?;
    Json::parse(text).map_err(|e| ApiError::bad(format!("{e}")))
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, ApiError> {
    doc.get(key)
        .ok_or_else(|| ApiError::bad(format!("missing field {key:?}")))
}

/// Build the clip from the request's `input` object under a model's world.
fn parse_input(input: &Json, world: &WorldConfig) -> Result<VideoSample, ApiError> {
    if let Some(spec) = input.get("spec") {
        parse_spec(spec, world)
    } else if input.get("frames").is_some() {
        parse_frames(input, world)
    } else {
        Err(ApiError::bad("input needs either \"spec\" or \"frames\""))
    }
}

fn parse_spec(spec: &Json, world: &WorldConfig) -> Result<VideoSample, ApiError> {
    let subject_seed = require(spec, "subject_seed")?
        .as_u64()
        .ok_or_else(|| ApiError::bad("subject_seed must be a non-negative integer"))?;
    let condition = match require(spec, "condition")?.as_str() {
        Some("stressed") => StressLabel::Stressed,
        Some("unstressed") => StressLabel::Unstressed,
        _ => {
            return Err(ApiError::bad(
                "condition must be \"stressed\" or \"unstressed\"",
            ))
        }
    };
    let sample_id = spec
        .get("sample_id")
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| ApiError::bad("sample_id must be a non-negative integer"))
        })
        .transpose()?
        .unwrap_or(0) as usize;
    let mut world = world.clone();
    if let Some(n) = spec.get("num_frames") {
        let n = n
            .as_u64()
            .filter(|&n| (2..=MAX_FRAMES as u64).contains(&n))
            .ok_or_else(|| ApiError::bad(format!("num_frames must be in 2..={MAX_FRAMES}")))?;
        world.num_frames = n as usize;
    }
    // The subject's idiosyncrasies derive purely from `subject_seed`, and
    // the episode purely from `(subject, sample_id, subject_seed)` — the
    // same clip for the same spec, always.
    let mut rng = StdRng::seed_from_u64(subject_seed);
    let subject = Subject::generate(subject_seed as usize, world.subject_idiosyncrasy, &mut rng);
    Ok(sample_video(
        &world,
        &subject,
        condition,
        sample_id,
        subject_seed,
    ))
}

fn parse_frames(input: &Json, world: &WorldConfig) -> Result<VideoSample, ApiError> {
    let frames = input
        .get("frames")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad("frames must be an array"))?;
    if frames.is_empty() || frames.len() > MAX_FRAMES {
        return Err(ApiError::bad(format!(
            "frames must hold 1..={MAX_FRAMES} frames"
        )));
    }
    let mut trajectory = Vec::with_capacity(frames.len());
    for (t, frame) in frames.iter().enumerate() {
        let values = frame
            .as_array()
            .filter(|v| v.len() == NUM_AUS)
            .ok_or_else(|| {
                ApiError::bad(format!(
                    "frame {t} must be an array of {NUM_AUS} AU intensities"
                ))
            })?;
        let mut v = AuVector::zeros();
        for (i, x) in values.iter().enumerate() {
            let x = x
                .as_f64()
                .filter(|x| x.is_finite() && (-10.0..=10.0).contains(x))
                .ok_or_else(|| ApiError::bad(format!("frame {t} entry {i} out of range")))?;
            v.set(ActionUnit::from_index(i).expect("i < NUM_AUS"), x as f32);
        }
        trajectory.push(v);
    }
    let identity_seed = input
        .get("identity_seed")
        .map(|v| v.as_u64().ok_or_else(|| ApiError::bad("bad identity_seed")))
        .transpose()?
        .unwrap_or(0);
    let render_seed = input
        .get("render_seed")
        .map(|v| v.as_u64().ok_or_else(|| ApiError::bad("bad render_seed")))
        .transpose()?
        .unwrap_or(0);
    // Label and apex annotation are training-side fields the inference
    // path never reads; placeholders keep the constructor honest.
    Ok(VideoSample::new(
        0,
        0,
        StressLabel::Unstressed,
        AuSet::EMPTY,
        trajectory,
        world.pixel_noise,
        world.texture_gain,
        identity_seed,
        world.identity_strength,
        render_seed,
    ))
}

/// Parse a `/v1/predict` body against the registry.
pub fn parse_predict(
    body: &[u8],
    lookup: impl Fn(&str) -> Option<WorldConfig>,
) -> Result<PredictRequest, ApiError> {
    let doc = parse_body(body)?;
    let model = require(&doc, "model")?
        .as_str()
        .ok_or_else(|| ApiError::bad("model must be a string"))?
        .to_owned();
    let world = lookup(&model).ok_or(ApiError {
        status: 404,
        code: "model_not_found",
        message: format!("unknown model {model:?}"),
    })?;
    let seed = require(&doc, "seed")?
        .as_u64()
        .ok_or_else(|| ApiError::bad("seed must be a non-negative integer"))?;
    let repeats = doc
        .get("chain_repeats")
        .map(|v| {
            v.as_u64()
                .filter(|&r| (1..=MAX_REPEATS as u64).contains(&r))
                .ok_or_else(|| ApiError::bad(format!("chain_repeats must be in 1..={MAX_REPEATS}")))
        })
        .transpose()?
        .unwrap_or(1) as u32;
    let video = parse_input(require(&doc, "input")?, &world)?;
    Ok(PredictRequest {
        model,
        seed,
        video,
        repeats,
    })
}

/// Parse a `/v1/explain` body against the registry.
pub fn parse_explain(
    body: &[u8],
    lookup: impl Fn(&str) -> Option<WorldConfig>,
) -> Result<ExplainRequest, ApiError> {
    let doc = parse_body(body)?;
    let predict = parse_predict(body, lookup)?;
    let method = require(&doc, "method")?
        .as_str()
        .and_then(explainers::PerturbationMethod::parse)
        .ok_or_else(|| ApiError::bad("method must be \"lime\", \"shap\" or \"sobol\""))?;
    let budget = doc
        .get("budget")
        .map(|v| {
            v.as_u64()
                .filter(|&b| (8..=10_000).contains(&b))
                .ok_or_else(|| ApiError::bad("budget must be in 8..=10000"))
        })
        .transpose()?
        .unwrap_or(256) as usize;
    // Scope on the canonical (model, input) text so identical clips share
    // cached mask evaluations regardless of seed or method.
    let scope_doc = obj(vec![
        ("model", Json::String(predict.model.clone())),
        ("input", require(&doc, "input")?.clone()),
    ]);
    let scope = fnv1a(scope_doc.to_text().as_bytes());
    Ok(ExplainRequest {
        predict,
        method,
        budget,
        scope,
    })
}

fn au_set_json(aus: AuSet) -> Json {
    Json::Object(vec![
        (
            "text".to_owned(),
            Json::String(facs::describe::render_description(aus)),
        ),
        (
            "aus".to_owned(),
            Json::Array(
                aus.iter()
                    .map(|au| {
                        obj(vec![
                            ("au", Json::Number(au.facs_number() as f64)),
                            ("name", Json::String(au.name().to_owned())),
                            ("region", Json::String(au.region().name().to_owned())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Run the chain and build the predict response body — a pure function of
/// `(pipeline, request)`.  The chain runs under the request's seed stream
/// (`stream_seed(seed, 0)`), decorrelated from any sibling use of the seed.
pub fn predict_response(entry: &ModelEntry, req: &PredictRequest) -> Json {
    predict_response_with_stats(entry, req).0
}

/// [`predict_response`] plus the number of tokens the decoder generated —
/// the chain runs on one KV-cached session so the count is exact.  The
/// body is byte-identical to [`predict_response`]'s.
pub fn predict_response_with_stats(entry: &ModelEntry, req: &PredictRequest) -> (Json, u64) {
    predict_response_with_stats_deadline(entry, req, None).expect("no deadline, cannot be exceeded")
}

/// The request ran past its deadline; the chain was abandoned at a stage
/// boundary and no response body exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded;

/// [`predict_response_with_stats`] with a cooperative deadline, checked at
/// every decode-loop boundary: before the chain starts and between the
/// describe → assess → highlight → score stages.  A request that blows its
/// budget stops consuming compute at the next boundary instead of running
/// the chain to completion for a client that already gave up.
///
/// Runs the chain through [`ChainStepper`] — the same resumable state
/// machine the continuous-batching scheduler interleaves — driven to
/// completion on a private session.  The stepper is bit-identical to
/// `predict_scored_with_session`, so a run that finishes under the
/// deadline produces bytes identical to the deadline-free path (and to the
/// scheduler's, whatever its co-tenants).
pub fn predict_response_with_stats_deadline(
    entry: &ModelEntry,
    req: &PredictRequest,
    deadline: Option<Instant>,
) -> Result<(Json, u64), DeadlineExceeded> {
    let check = || {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            Err(DeadlineExceeded)
        } else {
            Ok(())
        }
    };
    let chain_seed = runtime::stream_seed(req.seed, 0);
    let pipeline = &entry.pipeline;
    let mut stepper = ChainStepper::new(
        pipeline,
        pipeline.session(),
        req.video.clone(),
        chain_seed,
        req.repeats.max(1),
    );
    check()?;
    loop {
        // A private session sits on an unbounded slab: never exhausted.
        match stepper.step(pipeline).expect("unbounded kv slab") {
            StepOutcome::Token => {}
            StepOutcome::StageBoundary => check()?,
            StepOutcome::Finished => break,
        }
    }
    let (output, score) = stepper.finish();
    let body = predict_body(entry, req, &output, score);
    Ok((body, stepper.session().decoded_tokens()))
}

/// Serialize a finished chain into the predict response body — the pure
/// function of `(entry, request, output, score)` both the inline path and
/// the continuous-batching scheduler answer with.
pub(crate) fn predict_body(
    entry: &ModelEntry,
    req: &PredictRequest,
    output: &ChainOutput,
    score: f32,
) -> Json {
    let mut regions: Vec<&'static str> = Vec::new();
    for au in output.rationale.iter() {
        let r = au.region().name();
        if !regions.contains(&r) {
            regions.push(r);
        }
    }
    obj(vec![
        ("model", Json::String(entry.name.clone())),
        ("seed", Json::Number(req.seed as f64)),
        ("assessment", Json::String(output.assessment.to_string())),
        ("score", Json::Number(score as f64)),
        ("description", au_set_json(output.description)),
        ("rationale", au_set_json(output.rationale)),
        (
            "highlighted_regions",
            Json::Array(
                regions
                    .into_iter()
                    .map(|r| Json::String(r.to_owned()))
                    .collect(),
            ),
        ),
    ])
}

/// Run a perturbation explainer and build the explain response body.
///
/// Masked evaluations go through the entry's shared [`explainers::EvalCache`],
/// scoped by the request's `(model, input)` fingerprint, so repeated
/// coalitions across calls on the same clip cost one model query.
pub fn explain_response(entry: &ModelEntry, req: &ExplainRequest) -> Json {
    let video = &req.predict.video;
    let (fe, seg) = evalkit::faithfulness::segment_expressive_frame(video);
    let pipeline = &entry.pipeline;
    // The frozen decision function the explainer probes: p(stressed) with
    // the clean description and least-expressive frame held fixed.
    let description = pipeline.describe(video, 0.0, video.id as u64);
    let (_, fl) = video.expressive_pair();
    let model = &pipeline.model;
    let [st, un] = lfm::instructions::label_tokens(&model.vocab);
    let score = |img: &videosynth::image::Image| {
        let p = lfm::instructions::assess_prompt_from_images(model, img, &fl, description);
        let dist = model.next_token_distribution(&p);
        let (ps, pu) = (dist[st as usize], dist[un as usize]);
        if ps + pu > 0.0 {
            ps / (ps + pu)
        } else {
            0.5
        }
    };
    let exec = explainers::MaskExecutor::new().with_cache(&entry.cache, req.scope);
    let attribution = req.method.run(
        &exec,
        &fe,
        &seg,
        score,
        req.budget,
        runtime::stream_seed(req.predict.seed, 1),
    );
    obj(vec![
        ("model", Json::String(entry.name.clone())),
        ("seed", Json::Number(req.predict.seed as f64)),
        ("method", Json::String(req.method.name().to_owned())),
        ("segments", Json::Number(attribution.len() as f64)),
        (
            "scores",
            Json::Array(
                attribution
                    .scores()
                    .iter()
                    .map(|&s| Json::Number(s as f64))
                    .collect(),
            ),
        ),
        (
            "top_segments",
            Json::Array(
                attribution
                    .top_k(5)
                    .into_iter()
                    .map(|i| Json::Number(i as f64))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn lookup(name: &str) -> Option<WorldConfig> {
        match name {
            "uvsd_sim" => Some(WorldConfig::uvsd_like()),
            _ => None,
        }
    }

    fn spec_body(seed: u64) -> Vec<u8> {
        format!(
            r#"{{"model":"uvsd_sim","seed":{seed},"input":{{"spec":{{"subject_seed":9,"condition":"stressed","sample_id":4,"num_frames":4}}}}}}"#
        )
        .into_bytes()
    }

    #[test]
    fn spec_requests_parse_and_are_deterministic() {
        let a = parse_predict(&spec_body(7), lookup).unwrap();
        let b = parse_predict(&spec_body(7), lookup).unwrap();
        assert_eq!(a.model, "uvsd_sim");
        assert_eq!(a.seed, 7);
        assert_eq!(a.video.num_frames(), 4);
        assert_eq!(a.video.au_at(2).0, b.video.au_at(2).0);
    }

    #[test]
    fn chain_repeats_parses_defaults_and_rejects() {
        let req = parse_predict(&spec_body(7), lookup).unwrap();
        assert_eq!(req.repeats, 1, "absent chain_repeats defaults to 1");
        let body = br#"{"model":"uvsd_sim","seed":1,"chain_repeats":4,"input":{"spec":{"subject_seed":1,"condition":"stressed"}}}"#;
        assert_eq!(parse_predict(body, lookup).unwrap().repeats, 4);
        for bad in [
            &br#"{"model":"uvsd_sim","seed":1,"chain_repeats":0,"input":{"spec":{"subject_seed":1,"condition":"stressed"}}}"#[..],
            br#"{"model":"uvsd_sim","seed":1,"chain_repeats":9,"input":{"spec":{"subject_seed":1,"condition":"stressed"}}}"#,
            br#"{"model":"uvsd_sim","seed":1,"chain_repeats":"two","input":{"spec":{"subject_seed":1,"condition":"stressed"}}}"#,
        ] {
            let err = parse_predict(bad, lookup).unwrap_err();
            assert_eq!(err.status, 400, "{:?}", err.message);
        }
    }

    #[test]
    fn repeats_change_work_but_not_the_answer_fields() {
        let registry = Registry::untrained(11);
        let entry = registry.get("uvsd_sim").unwrap();
        let mut req = parse_predict(&spec_body(7), lookup).unwrap();
        let (one, one_tokens) = predict_response_with_stats(entry, &req);
        req.repeats = 3;
        let (three, three_tokens) = predict_response_with_stats(entry, &req);
        assert_eq!(
            one.get("assessment").unwrap().to_text(),
            three.get("assessment").unwrap().to_text()
        );
        assert_eq!(
            one.get("score").unwrap().to_text(),
            three.get("score").unwrap().to_text()
        );
        assert!(three_tokens > one_tokens, "repeats must add decode work");
    }

    #[test]
    fn frames_requests_parse() {
        let frame: Vec<String> = (0..NUM_AUS).map(|i| format!("0.{i}")).collect();
        let body = format!(
            r#"{{"model":"uvsd_sim","seed":1,"input":{{"frames":[[{f}],[{f}]],"identity_seed":5}}}}"#,
            f = frame.join(",")
        );
        let req = parse_predict(body.as_bytes(), lookup).unwrap();
        assert_eq!(req.video.num_frames(), 2);
    }

    #[test]
    fn rejections_carry_useful_statuses() {
        let unknown = parse_predict(
            br#"{"model":"nope","seed":1,"input":{"spec":{"subject_seed":1,"condition":"stressed"}}}"#,
            lookup,
        )
        .unwrap_err();
        assert_eq!(unknown.status, 404);
        assert_eq!(unknown.code, "model_not_found");
        // The rendered body follows the unified schema.
        let body = unknown.body();
        let err = body.get("error").unwrap();
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some("model_not_found")
        );
        assert!(err.get("message").and_then(Json::as_str).is_some());
        for bad in [
            &b"not json"[..],
            br#"{"seed":1,"input":{}}"#,
            br#"{"model":"uvsd_sim","seed":-1,"input":{}}"#,
            br#"{"model":"uvsd_sim","seed":1,"input":{}}"#,
            br#"{"model":"uvsd_sim","seed":1,"input":{"spec":{"subject_seed":1,"condition":"calm"}}}"#,
            br#"{"model":"uvsd_sim","seed":1,"input":{"frames":[[1,2]]}}"#,
        ] {
            let err = parse_predict(bad, lookup).unwrap_err();
            assert_eq!(err.status, 400, "{:?}", err.message);
            assert_eq!(err.code, "bad_request");
        }
    }

    #[test]
    fn explain_parses_method_budget_and_scope() {
        let body = br#"{"model":"uvsd_sim","seed":3,"method":"LIME","budget":64,"input":{"spec":{"subject_seed":1,"condition":"unstressed"}}}"#;
        let req = parse_explain(body, lookup).unwrap();
        assert_eq!(req.method, explainers::PerturbationMethod::Lime);
        assert_eq!(req.budget, 64);
        // Same (model, input) → same scope, regardless of seed/method.
        let body2 = br#"{"model":"uvsd_sim","seed":9,"method":"sobol","budget":64,"input":{"spec":{"subject_seed":1,"condition":"unstressed"}}}"#;
        assert_eq!(req.scope, parse_explain(body2, lookup).unwrap().scope);
        let err = parse_explain(
            br#"{"model":"uvsd_sim","seed":3,"method":"ours","input":{"spec":{"subject_seed":1,"condition":"stressed"}}}"#,
            lookup,
        )
        .unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn predict_response_is_reproducible_bytes() {
        let registry = Registry::untrained(11);
        let entry = registry.get("uvsd_sim").unwrap();
        let req = parse_predict(&spec_body(7), lookup).unwrap();
        let a = predict_response(entry, &req).to_text();
        let b = predict_response(entry, &req).to_text();
        assert_eq!(a, b);
        let doc = Json::parse(&a).unwrap();
        assert!(matches!(
            doc.get("assessment").and_then(Json::as_str),
            Some("Stressed") | Some("Unstressed")
        ));
        let score = doc.get("score").and_then(Json::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&score));
        assert!(doc.get("rationale").unwrap().get("text").is_some());
    }

    #[test]
    fn deadline_path_matches_plain_path_byte_for_byte() {
        let registry = Registry::untrained(11);
        let entry = registry.get("uvsd_sim").unwrap();
        let req = parse_predict(&spec_body(7), lookup).unwrap();
        let (plain, plain_tokens) = predict_response_with_stats(entry, &req);
        let (timed, timed_tokens) = predict_response_with_stats_deadline(
            entry,
            &req,
            Some(Instant::now() + std::time::Duration::from_secs(300)),
        )
        .unwrap();
        assert_eq!(plain.to_text(), timed.to_text());
        assert_eq!(plain_tokens, timed_tokens);
    }

    #[test]
    fn expired_deadline_aborts_at_a_stage_boundary() {
        let registry = Registry::untrained(11);
        let entry = registry.get("uvsd_sim").unwrap();
        let req = parse_predict(&spec_body(7), lookup).unwrap();
        let got = predict_response_with_stats_deadline(entry, &req, Some(Instant::now()));
        assert!(matches!(got, Err(DeadlineExceeded)));
    }
}
