//! The model registry: named, trained `Describe → Assess → Highlight`
//! pipelines the server routes requests to.
//!
//! One entry per dataset profile (`uvsd_sim`, `rsl_sim`), each carrying
//! the trained pipeline, the generative world configuration requests with
//! a sample spec are synthesized under, and a shared explainer evaluation
//! cache deduplicating repeated mask coalitions across `/v1/explain`
//! calls on the same sample.

use chain_reason::{train_pipeline, PipelineConfig, StressPipeline, Variant};
use explainers::EvalCache;
use lfm::pretrain::{pretrain, CapabilityProfile};
use lfm::{Lfm, ModelConfig};
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::world::WorldConfig;

/// One served model.
pub struct ModelEntry {
    /// Registry name, matching the dataset profile ("uvsd_sim", "rsl_sim").
    pub name: &'static str,
    /// The trained pipeline.
    pub pipeline: StressPipeline,
    /// Generative world requests with a `spec` input are synthesized under.
    pub world: WorldConfig,
    /// Shared mask-evaluation cache for `/v1/explain`.
    pub cache: EvalCache,
}

/// All served models, looked up by name.
pub struct Registry {
    entries: Vec<ModelEntry>,
}

impl Registry {
    /// Train both corpus profiles at a scale — the server's startup path.
    ///
    /// Mirrors the bench harness's experiment context: an 80/20 stratified
    /// split of the generated corpus, a capability-pretrained base, and
    /// Algorithm 1 (`Variant::Full`) on the training split.
    pub fn train(scale: Scale, seed: u64) -> Self {
        let au = Dataset::generate(DatasetProfile::disfa(Scale::Full), seed ^ 0xA0);
        let entries = [
            ("uvsd_sim", DatasetProfile::uvsd(scale)),
            ("rsl_sim", DatasetProfile::rsl(scale)),
        ]
        .into_iter()
        .map(|(name, profile)| {
            let world = profile.world.clone();
            let ds = Dataset::generate(profile, seed);
            let (train_idx, _) = ds.train_test_split(0.8, seed ^ 0x51);
            let train: Vec<_> = train_idx.iter().map(|&i| ds.samples[i].clone()).collect();

            let mut base = Lfm::new(ModelConfig::small(), seed ^ 0xBA5E);
            let capability = match scale {
                Scale::Smoke => CapabilityProfile::base().scaled(0.25),
                _ => CapabilityProfile::base(),
            };
            pretrain(&mut base, &capability, seed ^ 0x9E7);

            let mut cfg = match scale {
                Scale::Smoke => PipelineConfig::smoke(),
                _ => PipelineConfig::default_experiment(),
            };
            cfg.seed = seed;
            let (pipeline, _) = train_pipeline(base, cfg, &au.samples, &train, Variant::Full);
            ModelEntry {
                name,
                pipeline,
                world,
                cache: EvalCache::new(),
            }
        })
        .collect();
        Registry { entries }
    }

    /// Untrained tiny models under the same names — loads in milliseconds.
    ///
    /// For tests and smoke tooling that exercise the serving path
    /// (batching, determinism, backpressure) without paying for training;
    /// predictions are arbitrary but exactly as deterministic as trained
    /// ones.
    pub fn untrained(seed: u64) -> Self {
        let entries = [
            ("uvsd_sim", WorldConfig::uvsd_like()),
            ("rsl_sim", WorldConfig::rsl_like()),
        ]
        .into_iter()
        .map(|(name, world)| ModelEntry {
            name,
            pipeline: StressPipeline::new(
                Lfm::new(ModelConfig::tiny(), seed),
                PipelineConfig::smoke(),
            ),
            world,
            cache: EvalCache::new(),
        })
        .collect();
        Registry { entries }
    }

    /// Entry by name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Entry by positional index (how batched jobs reference models).
    pub fn entry(&self, idx: usize) -> &ModelEntry {
        &self.entries[idx]
    }

    /// Index of a named entry.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// All model names, registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_registry_serves_both_profiles() {
        let r = Registry::untrained(3);
        assert_eq!(r.names(), vec!["uvsd_sim", "rsl_sim"]);
        assert!(r.get("uvsd_sim").is_some());
        assert!(r.get("imagenet").is_none());
        assert_eq!(r.index_of("rsl_sim"), Some(1));
        assert_eq!(r.entry(1).name, "rsl_sim");
    }
}
