//! The model registry and its providers: named, trained
//! `Describe → Assess → Highlight` pipelines the server routes requests to.
//!
//! A [`Registry`] is an immutable snapshot of served models — one entry
//! per name, each carrying the pipeline, the generative world
//! configuration requests with a sample spec are synthesized under, its
//! provenance (version, content hash, source) and a shared explainer
//! evaluation cache.  Where a registry *comes from* is a
//! [`ModelProvider`]: train-at-boot ([`TrainedProvider`]), instant
//! untrained tiny models ([`UntrainedProvider`]) or `SRCR1` artifacts on
//! disk ([`ArtifactProvider`]).  The server keeps the provider around so
//! `POST /admin/reload` can build a fresh registry and hot-swap it.

use std::path::PathBuf;

use chain_reason::artifact;
use chain_reason::{train_pipeline, PipelineConfig, StressPipeline, Variant};
use explainers::EvalCache;
use lfm::pretrain::{pretrain, CapabilityProfile};
use lfm::{Lfm, ModelConfig};
use videosynth::dataset::{Dataset, DatasetProfile, Scale};
use videosynth::world::WorldConfig;

/// One served model.
pub struct ModelEntry {
    /// Registry name (dataset profile or artifact `meta.name`).
    pub name: String,
    /// Artifact version (1 for freshly trained/untrained registries).
    pub version: u32,
    /// CRC32 fingerprint of the model bytes — the artifact file for
    /// artifact-loaded entries, the serialized weights otherwise.
    pub content_hash: u32,
    /// Where the entry came from: `trained`, `untrained` or
    /// `artifact:<file>`.
    pub source: String,
    /// The trained pipeline.
    pub pipeline: StressPipeline,
    /// Generative world requests with a `spec` input are synthesized under.
    pub world: WorldConfig,
    /// Shared mask-evaluation cache for `/v1/explain`.
    pub cache: EvalCache,
}

/// All served models, looked up by name.
pub struct Registry {
    entries: Vec<ModelEntry>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("models", &self.names())
            .finish()
    }
}

/// CRC32 over the pipeline's serialized weights — the content fingerprint
/// for registries that never touched disk.
fn weights_hash(pipeline: &StressPipeline) -> u32 {
    let mut buf = Vec::new();
    pipeline
        .model
        .save_weights(&mut buf)
        .expect("in-memory serialization cannot fail");
    tinynn::serialize::crc32(&buf)
}

impl Registry {
    /// Build a registry from explicit entries (how providers assemble one).
    pub fn from_entries(entries: Vec<ModelEntry>) -> Self {
        Registry { entries }
    }

    /// Train both corpus profiles at a scale — the classic startup path.
    ///
    /// Mirrors the bench harness's experiment context: an 80/20 stratified
    /// split of the generated corpus, a capability-pretrained base, and
    /// Algorithm 1 (`Variant::Full`) on the training split.
    pub fn train(scale: Scale, seed: u64) -> Self {
        let au = Dataset::generate(DatasetProfile::disfa(Scale::Full), seed ^ 0xA0);
        let entries = [
            ("uvsd_sim", DatasetProfile::uvsd(scale)),
            ("rsl_sim", DatasetProfile::rsl(scale)),
        ]
        .into_iter()
        .map(|(name, profile)| {
            let world = profile.world.clone();
            let ds = Dataset::generate(profile, seed);
            let (train_idx, _) = ds.train_test_split(0.8, seed ^ 0x51);
            let train: Vec<_> = train_idx.iter().map(|&i| ds.samples[i].clone()).collect();

            let mut base = Lfm::new(ModelConfig::small(), seed ^ 0xBA5E);
            let capability = match scale {
                Scale::Smoke => CapabilityProfile::base().scaled(0.25),
                _ => CapabilityProfile::base(),
            };
            pretrain(&mut base, &capability, seed ^ 0x9E7);

            let mut cfg = match scale {
                Scale::Smoke => PipelineConfig::smoke(),
                _ => PipelineConfig::default_experiment(),
            };
            cfg.seed = seed;
            let (pipeline, _) = train_pipeline(base, cfg, &au.samples, &train, Variant::Full);
            ModelEntry {
                name: name.to_string(),
                version: 1,
                content_hash: weights_hash(&pipeline),
                source: "trained".to_string(),
                pipeline,
                world,
                cache: EvalCache::new(),
            }
        })
        .collect();
        Registry { entries }
    }

    /// Untrained tiny models under the same names — loads in milliseconds.
    ///
    /// For tests and smoke tooling that exercise the serving path
    /// (batching, determinism, backpressure) without paying for training;
    /// predictions are arbitrary but exactly as deterministic as trained
    /// ones.
    pub fn untrained(seed: u64) -> Self {
        let entries = [
            ("uvsd_sim", WorldConfig::uvsd_like()),
            ("rsl_sim", WorldConfig::rsl_like()),
        ]
        .into_iter()
        .map(|(name, world)| {
            let pipeline =
                StressPipeline::new(Lfm::new(ModelConfig::tiny(), seed), PipelineConfig::smoke());
            ModelEntry {
                name: name.to_string(),
                version: 1,
                content_hash: weights_hash(&pipeline),
                source: "untrained".to_string(),
                pipeline,
                world,
                cache: EvalCache::new(),
            }
        })
        .collect();
        Registry { entries }
    }

    /// Entry by name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Entry by positional index (how batched jobs reference models).
    pub fn entry(&self, idx: usize) -> &ModelEntry {
        &self.entries[idx]
    }

    /// Index of a named entry.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// All model names, registry order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// All entries, registry order (for `/v1/models`).
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }
}

/// Where registries come from.  The server builds its initial registry
/// through one of these and keeps it to rebuild on `POST /admin/reload`.
pub trait ModelProvider: Send + Sync {
    /// Human-readable description of the source (logged at boot).
    fn describe(&self) -> String;

    /// Build a fresh registry.  Must not mutate shared state: a failed
    /// provide leaves the server on its previous registry.
    fn provide(&self) -> Result<Registry, String>;
}

/// Train both corpus profiles at boot (the historical default).
pub struct TrainedProvider {
    /// Dataset scale to train at.
    pub scale: Scale,
    /// Base RNG seed.
    pub seed: u64,
}

impl ModelProvider for TrainedProvider {
    fn describe(&self) -> String {
        format!("train at {:?} scale, seed {}", self.scale, self.seed)
    }

    fn provide(&self) -> Result<Registry, String> {
        Ok(Registry::train(self.scale, self.seed))
    }
}

/// Untrained tiny models — for smoke tooling and tests.
pub struct UntrainedProvider {
    /// Init seed for the tiny models.
    pub seed: u64,
}

impl ModelProvider for UntrainedProvider {
    fn describe(&self) -> String {
        format!("untrained tiny models, seed {}", self.seed)
    }

    fn provide(&self) -> Result<Registry, String> {
        Ok(Registry::untrained(self.seed))
    }
}

/// Load every `*.srcr` artifact in a directory — zero training at boot.
pub struct ArtifactProvider {
    /// Directory holding `<name>.srcr` files.
    pub dir: PathBuf,
}

impl ModelProvider for ArtifactProvider {
    fn describe(&self) -> String {
        format!("artifacts from {}", self.dir.display())
    }

    fn provide(&self) -> Result<Registry, String> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot read {}: {e}", self.dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension()
                    .is_some_and(|ext| ext == artifact::ARTIFACT_EXT)
            })
            .collect();
        // Deterministic registry order regardless of directory iteration.
        paths.sort();
        if paths.is_empty() {
            return Err(format!(
                "no .{} artifacts in {}",
                artifact::ARTIFACT_EXT,
                self.dir.display()
            ));
        }
        let mut entries: Vec<ModelEntry> = Vec::with_capacity(paths.len());
        for path in paths {
            let file = path
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            let loaded =
                artifact::load_pipeline(&path).map_err(|e| format!("artifact {file}: {e}"))?;
            if entries.iter().any(|e| e.name == loaded.meta.name) {
                return Err(format!(
                    "artifact {file}: duplicate model name {:?}",
                    loaded.meta.name
                ));
            }
            entries.push(ModelEntry {
                name: loaded.meta.name,
                version: loaded.meta.version,
                content_hash: loaded.content_hash,
                source: format!("artifact:{file}"),
                pipeline: loaded.pipeline,
                world: loaded.world,
                cache: EvalCache::new(),
            });
        }
        Ok(Registry::from_entries(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_reason::ArtifactMeta;

    #[test]
    fn untrained_registry_serves_both_profiles() {
        let r = Registry::untrained(3);
        assert_eq!(r.names(), vec!["uvsd_sim", "rsl_sim"]);
        assert!(r.get("uvsd_sim").is_some());
        assert!(r.get("imagenet").is_none());
        assert_eq!(r.index_of("rsl_sim"), Some(1));
        assert_eq!(r.entry(1).name, "rsl_sim");
        for e in r.entries() {
            assert_eq!(e.version, 1);
            assert_eq!(e.source, "untrained");
        }
        // Same seed, same weights, same fingerprint; the two profiles share
        // an init seed here so their hashes coincide by construction.
        let r2 = Registry::untrained(3);
        assert_eq!(r.entry(0).content_hash, r2.entry(0).content_hash);
    }

    #[test]
    fn artifact_provider_round_trips_a_saved_registry() {
        let dir = std::env::temp_dir().join("srcr_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        for f in std::fs::read_dir(&dir).unwrap().flatten() {
            std::fs::remove_file(f.path()).ok();
        }
        let source = Registry::untrained(9);
        for entry in source.entries() {
            let meta = ArtifactMeta {
                name: entry.name.clone(),
                version: 4,
                scale: 0.25,
                variant: "full".to_string(),
                seed: 9,
                git: "test".to_string(),
            };
            chain_reason::save_pipeline(
                &dir.join(artifact::artifact_file_name(&entry.name)),
                &entry.pipeline,
                &entry.world,
                &meta,
            )
            .unwrap();
        }
        let provider = ArtifactProvider { dir: dir.clone() };
        let loaded = provider.provide().unwrap();
        // Sorted file order: rsl_sim.srcr before uvsd_sim.srcr.
        assert_eq!(loaded.names(), vec!["rsl_sim", "uvsd_sim"]);
        for e in loaded.entries() {
            assert_eq!(e.version, 4);
            assert!(e.source.starts_with("artifact:"), "{}", e.source);
            // Loaded weights are bitwise-identical to the saved ones.
            let orig = source.get(&e.name).unwrap();
            assert_eq!(weights_hash(&e.pipeline), weights_hash(&orig.pipeline));
        }

        // A corrupted artifact fails the whole provide with a typed message.
        let victim = dir.join("uvsd_sim.srcr");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let err = provider.provide().unwrap_err();
        assert!(err.contains("uvsd_sim.srcr"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_provider_rejects_an_empty_dir() {
        let dir = std::env::temp_dir().join("srcr_registry_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = ArtifactProvider { dir: dir.clone() }.provide().unwrap_err();
        assert!(err.contains("no .srcr artifacts"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
