//! Load generator for the inference server.
//!
//! ```text
//! servebench --addr 127.0.0.1:8472 --mode closed --requests 200 \
//!            [--concurrency 4] [--model uvsd_sim] [--seed 7] [--frames 6]
//! servebench --addr 127.0.0.1:8472 --mode open --rate 50 --duration-s 5 \
//!            [--mix 3:1] [--long-repeats 6] [--out RECORD.json] [--label name]
//! ```
//!
//! Closed loop: `--concurrency` workers each hold one keep-alive
//! connection and issue their share of `--requests` back-to-back — the
//! classic saturation measurement.  Open loop: requests fire on a fixed
//! schedule at `--rate` per second regardless of completions (one
//! short-lived connection each), which is what exposes queueing collapse
//! and admission control under overload.
//!
//! `--mix S:L` switches the workload to a deterministic short/long blend:
//! each cycle of `S+L` requests issues `S` short chains (one repeat) and
//! `L` long ones (`chain_repeats` from `--long-repeats`), drawn from a
//! fixed pool of four request shapes.  Because responses are pure
//! functions of `(model, request)` and repeats never change the answer,
//! every request in a pool class must return byte-identical bodies — the
//! run doubles as a determinism canary and fails on any divergence.
//! `--out` writes the run record as JSON (see `scripts/bench_serve.sh`);
//! `--label` names the record.
//!
//! Retries: `--retries N` re-issues requests that fail on transport or
//! come back 429/503/5xx, with exponential backoff from `--backoff-ms`
//! and deterministic seeded jitter.  A `Retry-After` header on a 429/503
//! is honored as the wait.  The summary reports how many retries were
//! spent and how many shed (429/503) responses were observed.
//!
//! Reports throughput and latency percentiles (via `evalkit`'s
//! percentile helper — the same estimator the paper's timing tables use).

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use evalkit::timing::p50_p95_p99;
use serve::api::MAX_REPEATS;
use serve::http::{read_response, write_request};
use serve::json::{obj, Json};

/// Number of distinct request shapes a `--mix` run cycles through; small
/// on purpose so the scheduler's prefix cache sees repeats.
const POOL: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

struct Args {
    addr: String,
    mode: Mode,
    requests: usize,
    concurrency: usize,
    rate: f64,
    duration: Duration,
    model: String,
    seed: u64,
    frames: usize,
    retries: u32,
    backoff: Duration,
    /// `--mix S:L` — shorts and longs per cycle (None = legacy spread).
    mix: Option<(usize, usize)>,
    long_repeats: u32,
    out: Option<String>,
    label: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8472".into(),
        mode: Mode::Closed,
        requests: 200,
        concurrency: 4,
        rate: 50.0,
        duration: Duration::from_secs(5),
        model: "uvsd_sim".into(),
        seed: 7,
        frames: 6,
        retries: 0,
        backoff: Duration::from_millis(50),
        mix: None,
        long_repeats: 6,
        out: None,
        label: "run".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        fn parse_err(name: &'static str) -> impl Fn(std::num::ParseIntError) -> String {
            move |e| format!("{name}: {e}")
        }
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => return Err(format!("unknown mode {other:?} (closed|open)")),
                }
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(parse_err("--requests"))?
            }
            "--concurrency" => {
                args.concurrency = value("--concurrency")?
                    .parse::<usize>()
                    .map_err(parse_err("--concurrency"))?
                    .max(1)
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| *r > 0.0)
                    .ok_or("--rate must be a positive number")?
            }
            "--duration-s" => {
                args.duration = Duration::from_secs(
                    value("--duration-s")?
                        .parse()
                        .map_err(parse_err("--duration-s"))?,
                )
            }
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(parse_err("--retries"))?
            }
            "--backoff-ms" => {
                args.backoff = Duration::from_millis(
                    value("--backoff-ms")?
                        .parse()
                        .map_err(parse_err("--backoff-ms"))?,
                )
            }
            "--mix" => {
                let spec = value("--mix")?;
                let (s, l) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--mix wants SHORT:LONG, got {spec:?}"))?;
                let s: usize = s.parse().map_err(|e| format!("--mix short: {e}"))?;
                let l: usize = l.parse().map_err(|e| format!("--mix long: {e}"))?;
                if s + l == 0 {
                    return Err("--mix needs at least one request per cycle".into());
                }
                args.mix = Some((s, l));
            }
            "--long-repeats" => {
                args.long_repeats = value("--long-repeats")?
                    .parse::<u32>()
                    .map_err(parse_err("--long-repeats"))?
                    .clamp(1, MAX_REPEATS)
            }
            "--out" => args.out = Some(value("--out")?),
            "--label" => args.label = value("--label")?,
            "--model" => args.model = value("--model")?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(parse_err("--seed"))?,
            "--frames" => {
                args.frames = value("--frames")?
                    .parse::<usize>()
                    .map_err(parse_err("--frames"))?
                    .clamp(2, 64)
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// The i-th request body: a deterministic spread over subjects, samples
/// and conditions, so a run exercises varied inputs reproducibly.
///
/// With `--mix` armed the body is instead drawn from a pool of [`POOL`]
/// fixed shapes (class `i % POOL`), decorated with `chain_repeats` per
/// the short/long cycle — same class ⇒ same answer bytes, which is what
/// the canary checks.
fn body(args: &Args, i: usize) -> Vec<u8> {
    if let Some((shorts, longs)) = args.mix {
        let class = i % POOL;
        let condition = if class.is_multiple_of(2) {
            "stressed"
        } else {
            "unstressed"
        };
        let repeats = if i % (shorts + longs) < shorts {
            1
        } else {
            args.long_repeats
        };
        return format!(
            r#"{{"model":"{}","seed":{},"chain_repeats":{repeats},"input":{{"spec":{{"subject_seed":{},"condition":"{condition}","sample_id":{class},"num_frames":{}}}}}}}"#,
            args.model,
            args.seed.wrapping_add(class as u64),
            args.seed.wrapping_add(class as u64),
            args.frames,
        )
        .into_bytes();
    }
    let condition = if i.is_multiple_of(2) {
        "stressed"
    } else {
        "unstressed"
    };
    format!(
        r#"{{"model":"{}","seed":{},"input":{{"spec":{{"subject_seed":{},"condition":"{condition}","sample_id":{},"num_frames":{}}}}}}}"#,
        args.model,
        args.seed.wrapping_add(i as u64),
        args.seed.wrapping_add((i % 16) as u64),
        i,
        args.frames,
    )
    .into_bytes()
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    client_err: AtomicU64,
    server_err: AtomicU64,
    transport_err: AtomicU64,
    /// Non-2xx responses whose body violates the unified error schema
    /// `{"error":{"code","message","retry_after"?}}`.
    schema_err: AtomicU64,
    /// Retry attempts spent (each re-issue of a request counts once).
    retries: AtomicU64,
    /// Shed responses observed (429/503), whether or not a retry won.
    shed: AtomicU64,
    /// `--mix` canary violations: 200 bodies that diverged from the first
    /// response seen for the same pool class.
    canary_err: AtomicU64,
}

/// First 200 body seen per `--mix` pool class; later bodies must match.
type Canary = Mutex<[Option<String>; POOL]>;

/// Whether a non-2xx body follows the unified error schema.
fn error_schema_ok(body: &str) -> bool {
    let Ok(doc) = Json::parse(body) else {
        return false;
    };
    let Some(err) = doc.get("error") else {
        return false;
    };
    err.get("code").and_then(Json::as_str).is_some()
        && err.get("message").and_then(Json::as_str).is_some()
}

/// One keep-alive connection to the server.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: &str) -> Option<Conn> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(stream.try_clone().ok()?);
    Some(Conn { stream, reader })
}

/// What a single wire attempt produced.
enum Attempt {
    /// 200 with the latency in milliseconds and the response body.
    Ok(f64, String),
    /// A status the retry policy may act on.
    Status {
        status: u16,
        retry_after: Option<u64>,
        schema_ok: bool,
    },
    /// The connection failed mid-request.
    Transport,
}

fn attempt(conn: &mut Conn, raw: &[u8], keep_alive: bool) -> Attempt {
    let started = Instant::now();
    if write_request(
        &mut conn.stream,
        "POST",
        "/v1/predict",
        Some(raw),
        keep_alive,
    )
    .is_err()
    {
        return Attempt::Transport;
    }
    match read_response(&mut conn.reader) {
        Ok(resp) if resp.status == 200 => {
            Attempt::Ok(started.elapsed().as_secs_f64() * 1e3, resp.body_text())
        }
        Ok(resp) => Attempt::Status {
            status: resp.status,
            retry_after: resp.header("retry-after").and_then(|v| v.parse().ok()),
            schema_ok: error_schema_ok(&resp.body_text()),
        },
        Err(_) => Attempt::Transport,
    }
}

/// splitmix64 — deterministic jitter source for retry backoff.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Issue request `i`, retrying per the args' policy; record the final
/// outcome and (on success) the first-byte-to-body latency of the attempt
/// that won.  `conn` is reused across calls while keep-alive holds and
/// replaced after transport failures.
fn one_request(
    args: &Args,
    i: usize,
    keep_alive: bool,
    conn: &mut Option<Conn>,
    tally: &Tally,
    latencies: &Mutex<Vec<f64>>,
    canary: Option<&Canary>,
) {
    let raw = body(args, i);
    let raw = raw.as_slice();
    for try_no in 0..=args.retries {
        if try_no > 0 {
            tally.retries.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = match conn {
            Some(c) => attempt(c, raw, keep_alive),
            None => match connect(&args.addr) {
                Some(mut c) => {
                    let o = attempt(&mut c, raw, keep_alive);
                    *conn = Some(c);
                    o
                }
                None => Attempt::Transport,
            },
        };
        // A non-keep-alive exchange consumed the connection either way.
        if !keep_alive {
            *conn = None;
        }
        // `retry_after`: the server's explicit wait, if it sent one.
        // `bucket`: where the failure lands in the tally if the retry
        // budget runs out on this attempt.
        let (retry_after, bucket) = match outcome {
            Attempt::Ok(ms, body) => {
                if let Some(canary) = canary {
                    let mut slots = canary.lock().expect("canary lock");
                    match &slots[i % POOL] {
                        Some(first) if *first != body => {
                            tally.canary_err.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(_) => {}
                        None => slots[i % POOL] = Some(body),
                    }
                }
                tally.ok.fetch_add(1, Ordering::Relaxed);
                latencies.lock().expect("latency lock").push(ms);
                return;
            }
            Attempt::Status {
                status,
                retry_after,
                schema_ok,
            } => {
                if !schema_ok {
                    tally.schema_err.fetch_add(1, Ordering::Relaxed);
                }
                if status == 429 || status == 503 {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                }
                match status {
                    429 | 503 => (
                        retry_after,
                        if status == 429 {
                            &tally.client_err
                        } else {
                            &tally.server_err
                        },
                    ),
                    s if s >= 500 => (None, &tally.server_err),
                    _ => {
                        // Deterministic client error: retrying cannot help.
                        tally.client_err.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Attempt::Transport => {
                *conn = None;
                (None, &tally.transport_err)
            }
        };
        if try_no == args.retries {
            // Budget exhausted: book the final failure.
            bucket.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Exponential backoff with deterministic jitter; an explicit
        // Retry-After from the server overrides the schedule.
        let wait = match retry_after {
            Some(secs) => Duration::from_secs(secs),
            None => {
                let base = args.backoff * 2u32.pow(try_no.min(16));
                let jitter_ns = splitmix64(args.seed ^ ((i as u64) << 20) ^ try_no as u64)
                    % (args.backoff.as_nanos().max(1) as u64);
                base + Duration::from_nanos(jitter_ns)
            }
        };
        std::thread::sleep(wait);
    }
}

fn run_closed(args: &Args, tally: &Tally, latencies: &Mutex<Vec<f64>>, canary: Option<&Canary>) {
    std::thread::scope(|scope| {
        for w in 0..args.concurrency {
            scope.spawn(move || {
                let mut conn = connect(&args.addr);
                let mut i = w;
                while i < args.requests {
                    one_request(args, i, true, &mut conn, tally, latencies, canary);
                    i += args.concurrency;
                }
            });
        }
    });
}

fn run_open(
    args: &Args,
    tally: &Tally,
    latencies: &Mutex<Vec<f64>>,
    canary: Option<&Canary>,
) -> usize {
    let interval = Duration::from_secs_f64(1.0 / args.rate);
    let start = Instant::now();
    let mut fired = 0usize;
    std::thread::scope(|scope| {
        while start.elapsed() < args.duration {
            let due = interval * fired as u32;
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            let i = fired;
            scope.spawn(move || {
                let mut conn = None;
                one_request(args, i, false, &mut conn, tally, latencies, canary);
            });
            fired += 1;
        }
    });
    fired
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("servebench: {e}");
            std::process::exit(2);
        }
    };

    let tally = Arc::new(Tally::default());
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let canary: Option<Canary> = args.mix.map(|_| Mutex::new(std::array::from_fn(|_| None)));
    let mix_tag = match args.mix {
        Some((s, l)) => format!(" mix={s}:{l}(x{})", args.long_repeats),
        None => String::new(),
    };
    let started = Instant::now();
    let issued = match args.mode {
        Mode::Closed => {
            println!(
                "servebench: mode=closed requests={} concurrency={} model={}{mix_tag}",
                args.requests, args.concurrency, args.model
            );
            run_closed(&args, &tally, &latencies, canary.as_ref());
            args.requests
        }
        Mode::Open => {
            println!(
                "servebench: mode=open rate={}/s duration={}s model={}{mix_tag}",
                args.rate,
                args.duration.as_secs(),
                args.model
            );
            run_open(&args, &tally, &latencies, canary.as_ref())
        }
    };
    let wall = started.elapsed().as_secs_f64();

    let ok = tally.ok.load(Ordering::Relaxed);
    let client = tally.client_err.load(Ordering::Relaxed);
    let server = tally.server_err.load(Ordering::Relaxed);
    let transport = tally.transport_err.load(Ordering::Relaxed);
    let schema = tally.schema_err.load(Ordering::Relaxed);
    let retries = tally.retries.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let canary_err = tally.canary_err.load(Ordering::Relaxed);
    println!(
        "  issued={issued} ok={ok} client_err={client} server_err={server} transport_err={transport} schema_err={schema} retries={retries} shed={shed}"
    );
    if args.mix.is_some() {
        println!(
            "  canary: {}",
            if canary_err == 0 {
                "all pool classes byte-identical".into()
            } else {
                format!("{canary_err} DIVERGENT bodies")
            }
        );
    }
    let throughput = ok as f64 / wall;
    println!("  wall={wall:.3}s throughput={throughput:.1} req/s");
    let mut ms = latencies.lock().expect("latency lock").clone();
    let stats = if ms.is_empty() {
        println!("  latency: no successful requests");
        None
    } else {
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        let max = ms.iter().cloned().fold(f64::MIN, f64::max);
        let [p50, p95, p99] = p50_p95_p99(&mut ms);
        println!(
            "  latency ms: p50={p50:.2} p95={p95:.2} p99={p99:.2} mean={mean:.2} max={max:.2}"
        );
        Some([p50, p95, p99, mean, max])
    };

    if let Some(path) = &args.out {
        let [p50, p95, p99, mean, max] = stats.unwrap_or([f64::NAN; 5]);
        let record = obj(vec![
            ("label", Json::String(args.label.clone())),
            (
                "mode",
                Json::String(
                    match args.mode {
                        Mode::Closed => "closed",
                        Mode::Open => "open",
                    }
                    .into(),
                ),
            ),
            ("rate", Json::Number(args.rate)),
            ("duration_s", Json::Number(args.duration.as_secs_f64())),
            (
                "mix",
                match args.mix {
                    Some((s, l)) => Json::String(format!("{s}:{l}")),
                    None => Json::Null,
                },
            ),
            ("long_repeats", Json::Number(args.long_repeats as f64)),
            ("issued", Json::Number(issued as f64)),
            ("ok", Json::Number(ok as f64)),
            ("shed", Json::Number(shed as f64)),
            ("server_err", Json::Number(server as f64)),
            ("transport_err", Json::Number(transport as f64)),
            ("canary_err", Json::Number(canary_err as f64)),
            ("ok_throughput_rps", Json::Number(throughput)),
            (
                "latency_ms",
                obj(vec![
                    ("p50", Json::Number(p50)),
                    ("p95", Json::Number(p95)),
                    ("p99", Json::Number(p99)),
                    ("mean", Json::Number(mean)),
                    ("max", Json::Number(max)),
                ]),
            ),
        ]);
        if let Err(e) = std::fs::write(path, record.to_text() + "\n") {
            eprintln!("servebench: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("  record written to {path}");
    }

    // Closed-loop runs demand a clean sweep; open-loop runs tolerate
    // admission-control rejections (that is what they are for).  Either
    // way, every non-2xx body must follow the unified error schema, and a
    // `--mix` canary divergence is always fatal — it means the scheduler
    // broke the determinism contract.
    let failed = schema > 0
        || canary_err > 0
        || match args.mode {
            Mode::Closed => ok as usize != issued,
            Mode::Open => server + transport > 0,
        };
    std::process::exit(if failed { 1 } else { 0 });
}
