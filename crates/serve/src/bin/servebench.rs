//! Load generator for the inference server.
//!
//! ```text
//! servebench --addr 127.0.0.1:8472 --mode closed --requests 200 \
//!            [--concurrency 4] [--model uvsd_sim] [--seed 7] [--frames 6]
//! servebench --addr 127.0.0.1:8472 --mode open --rate 50 --duration-s 5
//! ```
//!
//! Closed loop: `--concurrency` workers each hold one keep-alive
//! connection and issue their share of `--requests` back-to-back — the
//! classic saturation measurement.  Open loop: requests fire on a fixed
//! schedule at `--rate` per second regardless of completions (one
//! short-lived connection each), which is what exposes queueing collapse
//! and admission control under overload.
//!
//! Reports throughput and latency percentiles (via `evalkit`'s
//! percentile helper — the same estimator the paper's timing tables use).

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use evalkit::timing::p50_p95_p99;
use serve::http::{read_response, write_request};
use serve::json::Json;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

struct Args {
    addr: String,
    mode: Mode,
    requests: usize,
    concurrency: usize,
    rate: f64,
    duration: Duration,
    model: String,
    seed: u64,
    frames: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8472".into(),
        mode: Mode::Closed,
        requests: 200,
        concurrency: 4,
        rate: 50.0,
        duration: Duration::from_secs(5),
        model: "uvsd_sim".into(),
        seed: 7,
        frames: 6,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        fn parse_err(name: &'static str) -> impl Fn(std::num::ParseIntError) -> String {
            move |e| format!("{name}: {e}")
        }
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => return Err(format!("unknown mode {other:?} (closed|open)")),
                }
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(parse_err("--requests"))?
            }
            "--concurrency" => {
                args.concurrency = value("--concurrency")?
                    .parse::<usize>()
                    .map_err(parse_err("--concurrency"))?
                    .max(1)
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| *r > 0.0)
                    .ok_or("--rate must be a positive number")?
            }
            "--duration-s" => {
                args.duration = Duration::from_secs(
                    value("--duration-s")?
                        .parse()
                        .map_err(parse_err("--duration-s"))?,
                )
            }
            "--model" => args.model = value("--model")?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(parse_err("--seed"))?,
            "--frames" => {
                args.frames = value("--frames")?
                    .parse::<usize>()
                    .map_err(parse_err("--frames"))?
                    .clamp(2, 64)
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// The i-th request body: a deterministic spread over subjects, samples
/// and conditions, so a run exercises varied inputs reproducibly.
fn body(args: &Args, i: usize) -> Vec<u8> {
    let condition = if i.is_multiple_of(2) {
        "stressed"
    } else {
        "unstressed"
    };
    format!(
        r#"{{"model":"{}","seed":{},"input":{{"spec":{{"subject_seed":{},"condition":"{condition}","sample_id":{},"num_frames":{}}}}}}}"#,
        args.model,
        args.seed.wrapping_add(i as u64),
        args.seed.wrapping_add((i % 16) as u64),
        i,
        args.frames,
    )
    .into_bytes()
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    client_err: AtomicU64,
    server_err: AtomicU64,
    transport_err: AtomicU64,
    /// Non-2xx responses whose body violates the unified error schema
    /// `{"error":{"code","message","retry_after"?}}`.
    schema_err: AtomicU64,
}

/// Whether a non-2xx body follows the unified error schema.
fn error_schema_ok(body: &str) -> bool {
    let Ok(doc) = Json::parse(body) else {
        return false;
    };
    let Some(err) = doc.get("error") else {
        return false;
    };
    err.get("code").and_then(Json::as_str).is_some()
        && err.get("message").and_then(Json::as_str).is_some()
}

/// Issue one request on an open connection; record latency on success.
fn one_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    raw: &[u8],
    keep_alive: bool,
    tally: &Tally,
    latencies: &Mutex<Vec<f64>>,
) {
    let started = Instant::now();
    if write_request(stream, "POST", "/v1/predict", Some(raw), keep_alive).is_err() {
        tally.transport_err.fetch_add(1, Ordering::Relaxed);
        return;
    }
    match read_response(reader) {
        Ok(resp) => {
            match resp.status {
                200 => {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    latencies
                        .lock()
                        .expect("latency lock")
                        .push(started.elapsed().as_secs_f64() * 1e3);
                }
                s if (400..500).contains(&s) => {
                    tally.client_err.fetch_add(1, Ordering::Relaxed);
                    if !error_schema_ok(&resp.body_text()) {
                        tally.schema_err.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    tally.server_err.fetch_add(1, Ordering::Relaxed);
                    if !error_schema_ok(&resp.body_text()) {
                        tally.schema_err.fetch_add(1, Ordering::Relaxed);
                    }
                }
            };
        }
        Err(_) => {
            tally.transport_err.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_closed(args: &Args, tally: &Tally, latencies: &Mutex<Vec<f64>>) {
    std::thread::scope(|scope| {
        for w in 0..args.concurrency {
            scope.spawn(move || {
                let Ok(mut stream) = TcpStream::connect(&args.addr) else {
                    tally.transport_err.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let _ = stream.set_nodelay(true);
                let Ok(clone) = stream.try_clone() else {
                    tally.transport_err.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let mut reader = BufReader::new(clone);
                let mut i = w;
                while i < args.requests {
                    let raw = body(args, i);
                    one_request(&mut stream, &mut reader, &raw, true, tally, latencies);
                    i += args.concurrency;
                }
            });
        }
    });
}

fn run_open(args: &Args, tally: &Tally, latencies: &Mutex<Vec<f64>>) -> usize {
    let interval = Duration::from_secs_f64(1.0 / args.rate);
    let start = Instant::now();
    let mut fired = 0usize;
    std::thread::scope(|scope| {
        while start.elapsed() < args.duration {
            let due = interval * fired as u32;
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            let i = fired;
            scope.spawn(move || {
                let Ok(mut stream) = TcpStream::connect(&args.addr) else {
                    tally.transport_err.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let _ = stream.set_nodelay(true);
                let Ok(clone) = stream.try_clone() else {
                    tally.transport_err.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let mut reader = BufReader::new(clone);
                let raw = body(args, i);
                one_request(&mut stream, &mut reader, &raw, false, tally, latencies);
            });
            fired += 1;
        }
    });
    fired
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("servebench: {e}");
            std::process::exit(2);
        }
    };

    let tally = Arc::new(Tally::default());
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let issued = match args.mode {
        Mode::Closed => {
            println!(
                "servebench: mode=closed requests={} concurrency={} model={}",
                args.requests, args.concurrency, args.model
            );
            run_closed(&args, &tally, &latencies);
            args.requests
        }
        Mode::Open => {
            println!(
                "servebench: mode=open rate={}/s duration={}s model={}",
                args.rate,
                args.duration.as_secs(),
                args.model
            );
            run_open(&args, &tally, &latencies)
        }
    };
    let wall = started.elapsed().as_secs_f64();

    let ok = tally.ok.load(Ordering::Relaxed);
    let client = tally.client_err.load(Ordering::Relaxed);
    let server = tally.server_err.load(Ordering::Relaxed);
    let transport = tally.transport_err.load(Ordering::Relaxed);
    let schema = tally.schema_err.load(Ordering::Relaxed);
    println!(
        "  issued={issued} ok={ok} client_err={client} server_err={server} transport_err={transport} schema_err={schema}"
    );
    println!("  wall={wall:.3}s throughput={:.1} req/s", ok as f64 / wall);
    let mut ms = latencies.lock().expect("latency lock").clone();
    if ms.is_empty() {
        println!("  latency: no successful requests");
    } else {
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        let max = ms.iter().cloned().fold(f64::MIN, f64::max);
        let [p50, p95, p99] = p50_p95_p99(&mut ms);
        println!(
            "  latency ms: p50={p50:.2} p95={p95:.2} p99={p99:.2} mean={mean:.2} max={max:.2}"
        );
    }

    // Closed-loop runs demand a clean sweep; open-loop runs tolerate
    // admission-control rejections (that is what they are for).  Either
    // way, every non-2xx body must follow the unified error schema.
    let failed = schema > 0
        || match args.mode {
            Mode::Closed => ok as usize != issued,
            Mode::Open => server + transport > 0,
        };
    std::process::exit(if failed { 1 } else { 0 });
}
