//! The inference server binary.
//!
//! ```text
//! serve [--addr 127.0.0.1:8472] [--scale smoke|full] [--seed N]
//!       [--threads N] [--queue-cap N] [--max-running N]
//!       [--kv-pages N] [--page-rows N] [--sched continuous|window]
//!       [--deadline-ms N] [--io-timeout-ms N] [--max-body-bytes N]
//!       [--max-inflight-explain N] [--fault-plan SPEC]
//!       [--kernel-tier exact|fast|fast-q8]
//!       [--untrained | --model-dir DIR]
//! ```
//!
//! Model source (pick one):
//! - default: train both registry profiles at startup;
//! - `--untrained`: untrained tiny models, for smoke tooling;
//! - `--model-dir DIR`: load every `*.srcr` artifact in `DIR` — zero
//!   training at startup, and `POST /admin/reload` re-reads the directory
//!   for hot-swaps.
//!
//! Scheduler knobs: `--max-running` caps the running batch, `--kv-pages`
//! bounds the per-model KV page slab (0 = unbounded; exhaustion preempts
//! and eventually answers 503 `kv_exhausted`), `--page-rows` sets the KV
//! page granularity, and `--sched window` reverts to the classic
//! drain-then-admit micro-batcher for comparison.
//!
//! Robustness knobs: `--deadline-ms` bounds each predict end-to-end
//! (503 `deadline_exceeded` past it), `--io-timeout-ms` bounds how long a
//! request may take to arrive (408 against slow-loris peers),
//! `--max-body-bytes` caps bodies (413), `--max-inflight-explain` sets
//! where `/v1/explain` degrades to cached-or-429.  `--fault-plan SPEC`
//! (or the `SRCR_FAULT_PLAN` env var) arms a deterministic chaos plan —
//! see `runtime::faults` and `scripts/chaos_smoke.sh`.
//!
//! Prints the bound address and serves until a client posts
//! `/admin/shutdown`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serve::{
    ArtifactProvider, ModelProvider, SchedConfig, SchedPolicy, Server, ServerConfig,
    TrainedProvider, UntrainedProvider,
};
use videosynth::dataset::Scale;

struct Args {
    addr: String,
    scale: Scale,
    seed: u64,
    threads: usize,
    sched: SchedConfig,
    deadline: Option<Duration>,
    io_timeout: Duration,
    max_body: usize,
    max_inflight_explain: usize,
    fault_plan: Option<String>,
    kernel_tier: Option<tinynn::kernels::KernelTier>,
    untrained: bool,
    model_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let defaults = ServerConfig::default();
    let mut args = Args {
        addr: "127.0.0.1:8472".into(),
        scale: Scale::Smoke,
        seed: 7,
        threads: 0,
        sched: SchedConfig::default(),
        deadline: defaults.deadline,
        io_timeout: defaults.io_timeout,
        max_body: defaults.max_body,
        max_inflight_explain: defaults.max_inflight_explain,
        fault_plan: None,
        kernel_tier: None,
        untrained: false,
        model_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?} (smoke|full)")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--queue-cap" => {
                args.sched.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--max-running" => {
                args.sched.max_running = value("--max-running")?
                    .parse()
                    .map_err(|e| format!("--max-running: {e}"))?
            }
            "--kv-pages" => {
                args.sched.kv_pages = value("--kv-pages")?
                    .parse()
                    .map_err(|e| format!("--kv-pages: {e}"))?
            }
            "--page-rows" => {
                args.sched.page_rows = value("--page-rows")?
                    .parse()
                    .map_err(|e| format!("--page-rows: {e}"))?
            }
            "--sched" => {
                args.sched.policy = match value("--sched")?.as_str() {
                    "continuous" => SchedPolicy::Continuous,
                    "window" => SchedPolicy::Window,
                    other => return Err(format!("unknown policy {other:?} (continuous|window)")),
                }
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                args.deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--io-timeout-ms" => {
                args.io_timeout = Duration::from_millis(
                    value("--io-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--io-timeout-ms: {e}"))?,
                )
            }
            "--max-body-bytes" => {
                args.max_body = value("--max-body-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-body-bytes: {e}"))?
            }
            "--max-inflight-explain" => {
                args.max_inflight_explain = value("--max-inflight-explain")?
                    .parse()
                    .map_err(|e| format!("--max-inflight-explain: {e}"))?
            }
            "--fault-plan" => args.fault_plan = Some(value("--fault-plan")?),
            "--kernel-tier" => {
                args.kernel_tier = Some(tinynn::kernels::KernelTier::parse(&value(
                    "--kernel-tier",
                )?)?)
            }
            "--untrained" => args.untrained = true,
            "--model-dir" => args.model_dir = Some(value("--model-dir")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.untrained && args.model_dir.is_some() {
        return Err("--untrained and --model-dir are mutually exclusive".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    runtime::set_threads(args.threads);

    // Kernel tier: an explicit --kernel-tier wins; otherwise the lazy
    // SRCR_KERNEL_TIER env default inside tinynn applies (Exact).
    if let Some(tier) = args.kernel_tier {
        tinynn::kernels::set_kernel_tier(tier);
    }
    eprintln!("kernel tier: {}", tinynn::kernels::kernel_tier());

    // Chaos: an explicit --fault-plan wins, else SRCR_FAULT_PLAN if set.
    let armed = match &args.fault_plan {
        Some(spec) => runtime::faults::FaultPlan::parse(spec)
            .map(|p| {
                runtime::faults::arm(p);
                true
            })
            .map_err(|e| format!("--fault-plan: {e}")),
        None => runtime::faults::arm_from_env().map_err(|e| format!("SRCR_FAULT_PLAN: {e}")),
    };
    match armed {
        Ok(true) => eprintln!("chaos: fault plan armed"),
        Ok(false) => {}
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    }

    let provider: Arc<dyn ModelProvider> = if let Some(dir) = &args.model_dir {
        Arc::new(ArtifactProvider { dir: dir.into() })
    } else if args.untrained {
        Arc::new(UntrainedProvider { seed: args.seed })
    } else {
        Arc::new(TrainedProvider {
            scale: args.scale,
            seed: args.seed,
        })
    };
    eprintln!("model source: {}", provider.describe());

    let boot = Instant::now();
    let mut server = match Server::start_dyn(
        provider,
        ServerConfig {
            addr: args.addr,
            sched: args.sched,
            threads: args.threads,
            deadline: args.deadline,
            io_timeout: args.io_timeout,
            max_body: args.max_body,
            max_inflight_explain: args.max_inflight_explain,
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    // The cold-start number EXPERIMENTS.md compares across model sources.
    eprintln!(
        "models ready in {:.3}s: {}",
        boot.elapsed().as_secs_f64(),
        server.model_names().join(", ")
    );
    // The smoke script and other tooling parse this line for the port.
    println!("listening on http://{}", server.addr());

    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining");
    server.shutdown();
    let m = server.metrics();
    eprintln!(
        "served {} requests ({} sched rounds, {} prefix-hit tokens, {} faults injected); bye",
        m.served(),
        m.sched_rounds.load(std::sync::atomic::Ordering::Relaxed),
        m.prefix_hit_tokens
            .load(std::sync::atomic::Ordering::Relaxed),
        runtime::faults::injected_total()
    );
}
