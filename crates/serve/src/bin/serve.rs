//! The inference server binary.
//!
//! ```text
//! serve [--addr 127.0.0.1:8472] [--scale smoke|full] [--seed N]
//!       [--threads N] [--queue-cap N] [--max-batch N] [--window-ms N]
//!       [--untrained]
//! ```
//!
//! Trains both registry profiles at startup (or loads untrained tiny
//! models with `--untrained`, for smoke tooling), prints the bound
//! address, and serves until a client posts `/admin/shutdown`.

use std::time::Duration;

use serve::{BatchConfig, Registry, Server, ServerConfig};
use videosynth::dataset::Scale;

struct Args {
    addr: String,
    scale: Scale,
    seed: u64,
    threads: usize,
    batch: BatchConfig,
    untrained: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8472".into(),
        scale: Scale::Smoke,
        seed: 7,
        threads: 0,
        batch: BatchConfig::default(),
        untrained: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?} (smoke|full)")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--queue-cap" => {
                args.batch.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--max-batch" => {
                args.batch.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--window-ms" => {
                args.batch.window = Duration::from_millis(
                    value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?,
                )
            }
            "--untrained" => args.untrained = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    runtime::set_threads(args.threads);

    let registry = if args.untrained {
        eprintln!("loading untrained tiny models (--untrained)");
        Registry::untrained(args.seed)
    } else {
        eprintln!(
            "training registry at {:?} scale, seed {}",
            args.scale, args.seed
        );
        Registry::train(args.scale, args.seed)
    };
    eprintln!("models ready: {}", registry.names().join(", "));

    let mut server = match Server::start(
        registry,
        ServerConfig {
            addr: args.addr,
            batch: args.batch,
            threads: args.threads,
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The smoke script and other tooling parse this line for the port.
    println!("listening on http://{}", server.addr());

    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining");
    server.shutdown();
    let m = server.metrics();
    eprintln!(
        "served {} requests ({} batches); bye",
        m.served(),
        m.batches.load(std::sync::atomic::Ordering::Relaxed)
    );
}
