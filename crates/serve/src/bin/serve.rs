//! The inference server binary.
//!
//! ```text
//! serve [--addr 127.0.0.1:8472] [--scale smoke|full] [--seed N]
//!       [--threads N] [--queue-cap N] [--max-batch N] [--window-ms N]
//!       [--untrained | --model-dir DIR]
//! ```
//!
//! Model source (pick one):
//! - default: train both registry profiles at startup;
//! - `--untrained`: untrained tiny models, for smoke tooling;
//! - `--model-dir DIR`: load every `*.srcr` artifact in `DIR` — zero
//!   training at startup, and `POST /admin/reload` re-reads the directory
//!   for hot-swaps.
//!
//! Prints the bound address and serves until a client posts
//! `/admin/shutdown`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serve::{
    ArtifactProvider, BatchConfig, ModelProvider, Server, ServerConfig, TrainedProvider,
    UntrainedProvider,
};
use videosynth::dataset::Scale;

struct Args {
    addr: String,
    scale: Scale,
    seed: u64,
    threads: usize,
    batch: BatchConfig,
    untrained: bool,
    model_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8472".into(),
        scale: Scale::Smoke,
        seed: 7,
        threads: 0,
        batch: BatchConfig::default(),
        untrained: false,
        model_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?} (smoke|full)")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--queue-cap" => {
                args.batch.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--max-batch" => {
                args.batch.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--window-ms" => {
                args.batch.window = Duration::from_millis(
                    value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?,
                )
            }
            "--untrained" => args.untrained = true,
            "--model-dir" => args.model_dir = Some(value("--model-dir")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.untrained && args.model_dir.is_some() {
        return Err("--untrained and --model-dir are mutually exclusive".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    runtime::set_threads(args.threads);

    let provider: Arc<dyn ModelProvider> = if let Some(dir) = &args.model_dir {
        Arc::new(ArtifactProvider { dir: dir.into() })
    } else if args.untrained {
        Arc::new(UntrainedProvider { seed: args.seed })
    } else {
        Arc::new(TrainedProvider {
            scale: args.scale,
            seed: args.seed,
        })
    };
    eprintln!("model source: {}", provider.describe());

    let boot = Instant::now();
    let mut server = match Server::start_dyn(
        provider,
        ServerConfig {
            addr: args.addr,
            batch: args.batch,
            threads: args.threads,
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    // The cold-start number EXPERIMENTS.md compares across model sources.
    eprintln!(
        "models ready in {:.3}s: {}",
        boot.elapsed().as_secs_f64(),
        server.model_names().join(", ")
    );
    // The smoke script and other tooling parse this line for the port.
    println!("listening on http://{}", server.addr());

    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining");
    server.shutdown();
    let m = server.metrics();
    eprintln!(
        "served {} requests ({} batches); bye",
        m.served(),
        m.batches.load(std::sync::atomic::Ordering::Relaxed)
    );
}
