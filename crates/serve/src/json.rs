//! Hand-rolled JSON: a value type, a recursive-descent parser and a
//! deterministic serializer.
//!
//! The build environment has no crate registry (see DESIGN.md §2), so the
//! serving API carries its own JSON the same way `vendor/rand` carries its
//! own RNG.  Two properties matter here beyond correctness:
//!
//! * **Deterministic serialization** — objects keep insertion order and
//!   numbers format via Rust's shortest-roundtrip `f64` display, so a
//!   response body is a pure function of the response value.  The
//!   determinism guarantee of `/v1/predict` (same request + seed →
//!   byte-identical body) rests on this.
//! * **Bounded parsing** — nesting depth is capped so hostile bodies
//!   cannot overflow the stack.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64` (the interchange profile).
    Number(f64),
    String(String),
    Array(Vec<Json>),
    /// Members in insertion order; duplicate keys keep the first.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to the canonical compact text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }

    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

/// Convenience constructor for object literals.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => write_number(out, *n),
        Json::String(s) => write_string(out, s),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Shortest round-trip form; integral values print without ".0".
        if n.fract() == 0.0 && n.abs() < 1e15 {
            let _ = fmt::write(out, format_args!("{}", n as i64));
        } else {
            let _ = fmt::write(out, format_args!("{n}"));
        }
    } else {
        // JSON has no NaN/Inf; emit null like other lenient serializers.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            if !members.iter().any(|(k, _)| *k == key) {
                members.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // combined: the closed API surface never emits
                            // astral-plane text.
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // remaining continuation bytes are valid by
                    // construction; re-decode from the char boundary.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            self.pos += 1;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_text(), text);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn numbers_parse_and_format() {
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-0.5e1").unwrap(), Json::Number(-5.0));
        assert_eq!(Json::Number(42.0).to_text(), "42");
        assert_eq!(Json::Number(0.25).to_text(), "0.25");
        assert_eq!(Json::Number(f64::NAN).to_text(), "null");
    }

    #[test]
    fn as_u64_guards() {
        assert_eq!(Json::Number(7.0).as_u64(), Some(7));
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::Number(1.5).as_u64(), None);
        assert_eq!(Json::String("7".into()).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01x",
            "\"\\q\"",
            "{\"a\":1}trailing",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"));
    }

    #[test]
    fn duplicate_keys_keep_the_first() {
        let v = Json::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::parse(r#""a\u0041\t\"β""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\"β"));
        assert_eq!(Json::String("x\u{1}y".into()).to_text(), r#""x\u0001y""#);
    }
}
