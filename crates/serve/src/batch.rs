//! Micro-batching scheduler with bounded admission.
//!
//! Predict requests are enqueued into a bounded queue; a dedicated batcher
//! thread collects them into micro-batches — up to `max_batch` jobs, or
//! whatever arrived within the batching `window` of the first job — and
//! dispatches each batch through the deterministic [`runtime::Pool`].
//!
//! Admission control is strict: a full queue rejects the request
//! immediately (`429 Too Many Requests` upstream) rather than queueing
//! unboundedly.  Draining flips a flag that rejects new work (`503`) while
//! the batcher finishes everything already admitted, so no accepted
//! request is ever dropped.
//!
//! Determinism: each job's response body is built by a pure function of
//! the request alone (`api::predict_response`), and `par_map` preserves
//! input order bit-identically across worker counts — so how jobs happen
//! to be batched together can change *latency* but never *bytes*.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api::{predict_response_with_stats_deadline, PredictRequest};
use crate::metrics::Metrics;
use crate::registry::Registry;

/// Fault-injection point consulted once per batch job, inside the worker
/// closure — any armed kind panics there, exercising the pool's unwind
/// isolation end-to-end.
pub const FAULT_WORKER_EXEC: &str = "worker.exec";

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Admission-queue capacity; submissions beyond this are rejected.
    pub queue_cap: usize,
    /// Largest batch dispatched at once.
    pub max_batch: usize,
    /// How long the batcher waits for stragglers after the first job.
    pub window: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            queue_cap: 64,
            max_batch: 8,
            window: Duration::from_millis(2),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — retry later (429).
    QueueFull,
    /// The server is draining — no new work (503).
    Draining,
}

/// Why an *admitted* job produced no response body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job's deadline passed before the chain finished (503).
    DeadlineExceeded,
    /// The job panicked; the panic was caught and isolated to this one
    /// request (500) — the rest of the batch and the pool are unharmed.
    Panicked(String),
}

/// One admitted predict job.
///
/// Pins the registry snapshot it was admitted against, so a hot-swap via
/// `/admin/reload` never changes which model an in-flight request runs on:
/// admitted work drains on the old registry, new requests see the new one.
struct Job {
    /// The registry snapshot this job resolves its model in.
    registry: Arc<Registry>,
    /// Registry index of the target model.
    entry: usize,
    request: PredictRequest,
    /// When this job's response stops being worth computing.  Checked at
    /// batch dispatch and at every chain-stage boundary.
    deadline: Option<Instant>,
    /// Where the finished response body (or its failure) goes.
    done: mpsc::Sender<Result<String, JobError>>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled on enqueue and on drain.
    arrived: Condvar,
    draining: AtomicBool,
    cfg: BatchConfig,
    metrics: Arc<Metrics>,
}

/// Handle for submitting predict jobs; clone-cheap via `Arc` internally.
pub struct Scheduler {
    shared: Arc<Shared>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Start the batcher thread.  Jobs carry their own registry snapshot,
    /// so the scheduler itself is registry-agnostic.
    pub fn start(pool: Arc<runtime::Pool>, metrics: Arc<Metrics>, cfg: BatchConfig) -> Self {
        assert!(cfg.queue_cap > 0 && cfg.max_batch > 0);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            draining: AtomicBool::new(false),
            cfg,
            metrics,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(&shared, &pool))
                .expect("spawn batcher")
        };
        Scheduler {
            shared,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// Admit a predict job against a registry snapshot; the returned
    /// channel yields the response body or the reason it never existed.
    pub fn submit(
        &self,
        registry: Arc<Registry>,
        entry: usize,
        request: PredictRequest,
        deadline: Option<Instant>,
    ) -> Result<mpsc::Receiver<Result<String, JobError>>, SubmitError> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        let (done, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("scheduler lock");
            if queue.len() >= self.shared.cfg.queue_cap {
                self.shared
                    .metrics
                    .queue_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            queue.push_back(Job {
                registry,
                entry,
                request,
                deadline,
                done,
            });
            self.shared
                .metrics
                .queue_depth
                .store(queue.len(), Ordering::Relaxed);
        }
        self.shared.arrived.notify_all();
        Ok(rx)
    }

    /// Current queue length (for `/readyz` and tests).
    pub fn depth(&self) -> usize {
        self.shared.queue.lock().expect("scheduler lock").len()
    }

    /// Stop admitting work, finish everything already queued, and join the
    /// batcher.  Idempotent.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.arrived.notify_all();
        if let Some(h) = self.batcher.lock().expect("batcher lock").take() {
            h.join().expect("batcher panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.drain();
    }
}

fn batcher_loop(shared: &Shared, pool: &runtime::Pool) {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            // Only returned empty when draining with nothing left.
            return;
        }
        shared.metrics.record_batch(batch.len());
        let bodies = pool.try_par_map(&batch, |_, job| {
            // A job whose deadline already passed while queued is dropped
            // before any chain work starts.
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(JobError::DeadlineExceeded);
            }
            // Chaos hook: an armed `worker.exec` fault panics inside the
            // worker closure, whatever its kind — exactly the failure the
            // pool's unwind isolation must contain.
            if let Some(kind) = runtime::faults::check(FAULT_WORKER_EXEC) {
                panic!("injected {} fault at {FAULT_WORKER_EXEC}", kind.name());
            }
            let started = Instant::now();
            predict_response_with_stats_deadline(
                job.registry.entry(job.entry),
                &job.request,
                job.deadline,
            )
            .map_err(|_| JobError::DeadlineExceeded)
            .map(|(body, tokens)| (body.to_text(), tokens, started.elapsed().as_secs_f64()))
        });
        for (job, result) in batch.iter().zip(bodies) {
            let outcome = match result {
                Ok(Ok((body, tokens, seconds))) => {
                    shared.metrics.record_decode(tokens, seconds);
                    Ok(body)
                }
                Ok(Err(e)) => Err(e),
                Err(panicked) => {
                    shared.metrics.record_worker_panic();
                    Err(JobError::Panicked(panicked.message))
                }
            };
            if matches!(outcome, Err(JobError::DeadlineExceeded)) {
                shared.metrics.record_deadline_exceeded();
            }
            // A gone receiver means the client hung up; nothing to do.
            let _ = job.done.send(outcome);
        }
    }
}

/// Block until a batch is ready: up to `max_batch` jobs, closing the batch
/// `window` after the first arrival.  Returns empty only on drain-and-done.
fn collect_batch(shared: &Shared) -> Vec<Job> {
    let mut queue = shared.queue.lock().expect("scheduler lock");
    loop {
        if !queue.is_empty() {
            break;
        }
        if shared.draining.load(Ordering::Acquire) {
            return Vec::new();
        }
        queue = shared.arrived.wait(queue).expect("scheduler lock");
    }
    // First job is in; give stragglers the window to fill the batch.
    let deadline = Instant::now() + shared.cfg.window;
    while queue.len() < shared.cfg.max_batch && !shared.draining.load(Ordering::Acquire) {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (q, timeout) = shared
            .arrived
            .wait_timeout(queue, deadline - now)
            .expect("scheduler lock");
        queue = q;
        if timeout.timed_out() {
            break;
        }
    }
    let take = queue.len().min(shared.cfg.max_batch);
    let batch: Vec<Job> = queue.drain(..take).collect();
    shared
        .metrics
        .queue_depth
        .store(queue.len(), Ordering::Relaxed);
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::parse_predict;
    use videosynth::world::WorldConfig;

    fn request(seed: u64) -> PredictRequest {
        let body = format!(
            r#"{{"model":"uvsd_sim","seed":{seed},"input":{{"spec":{{"subject_seed":3,"condition":"stressed","num_frames":3}}}}}}"#
        );
        parse_predict(body.as_bytes(), |_| Some(WorldConfig::uvsd_like())).unwrap()
    }

    fn scheduler(cfg: BatchConfig) -> (Scheduler, Arc<Registry>, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let s = Scheduler::start(Arc::new(runtime::Pool::new(2)), Arc::clone(&metrics), cfg);
        (s, Arc::new(Registry::untrained(5)), metrics)
    }

    #[test]
    fn batches_serve_all_jobs_with_identical_bodies_per_request() {
        let (s, r, metrics) = scheduler(BatchConfig::default());
        let receivers: Vec<_> = (0..6)
            .map(|_| s.submit(Arc::clone(&r), 0, request(42), None).unwrap())
            .collect();
        let bodies: Vec<String> = receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        for b in &bodies {
            assert_eq!(b, &bodies[0], "same request must serialize identically");
        }
        s.drain();
        assert!(metrics.batches.load(Ordering::Relaxed) >= 1);
        // Each served job generated tokens on its KV-cached session.
        assert!(metrics.generated_tokens.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn full_queue_rejects_and_counts() {
        let (s, r, metrics) = scheduler(BatchConfig {
            queue_cap: 2,
            max_batch: 2,
            // A long window so jobs sit in the queue while we overflow it.
            window: Duration::from_secs(5),
        });
        // Saturate: the batcher takes jobs off the queue quickly, so keep
        // pushing until a rejection is observed (bounded attempts).
        let mut rejected = false;
        let mut pending = Vec::new();
        for _ in 0..200 {
            match s.submit(Arc::clone(&r), 0, request(1), None) {
                Ok(rx) => pending.push(rx),
                Err(SubmitError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(rejected, "a capacity-2 queue must eventually reject");
        assert!(metrics.queue_rejected.load(Ordering::Relaxed) >= 1);
        s.drain();
        // Every admitted job still completes.
        for rx in pending {
            rx.recv().unwrap().unwrap();
        }
    }

    #[test]
    fn drain_rejects_new_work_and_is_idempotent() {
        let (s, r, _) = scheduler(BatchConfig::default());
        s.drain();
        assert_eq!(
            s.submit(r, 0, request(1), None).unwrap_err(),
            SubmitError::Draining
        );
        s.drain();
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn expired_deadline_fails_without_running_the_chain() {
        let (s, r, metrics) = scheduler(BatchConfig::default());
        let rx = s
            .submit(Arc::clone(&r), 0, request(1), Some(Instant::now()))
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Err(JobError::DeadlineExceeded));
        // A generous deadline still completes normally.
        let rx = s
            .submit(
                r,
                0,
                request(1),
                Some(Instant::now() + Duration::from_secs(300)),
            )
            .unwrap();
        assert!(rx.recv().unwrap().is_ok());
        s.drain();
        assert_eq!(metrics.deadline_exceeded.load(Ordering::Relaxed), 1);
        // No decode stats were recorded for the dead job alone.
        assert!(metrics.generated_tokens.load(Ordering::Relaxed) > 0);
    }
}
