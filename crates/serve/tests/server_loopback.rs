//! Loopback integration tests: a real server on an ephemeral port, real
//! TCP clients, full lifecycle (predict → metrics → drain) plus the
//! serving layer's determinism guarantee across scheduler/thread shapes.
//!
//! Uses untrained tiny models (`Registry::untrained`): the serving paths
//! under test — routing, scheduling, admission control, reproducibility —
//! are identical to production, without paying for training in debug.

use std::io::BufReader;
use std::net::TcpStream;

use serve::http::{read_response, write_request, ClientResponse};
use serve::json::Json;
use serve::{SchedConfig, Server, ServerConfig, UntrainedProvider};

const SEED: u64 = 11;

fn start(queue_cap: usize, max_running: usize, threads: usize) -> Server {
    Server::start(
        UntrainedProvider { seed: SEED },
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            sched: SchedConfig {
                queue_cap,
                max_running,
                ..SchedConfig::default()
            },
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// Assert a non-2xx response follows the unified error schema and return
/// its `error.code`.
fn assert_error_schema(resp: &ClientResponse) -> String {
    let doc = Json::parse(&resp.body_text()).expect("error body must be JSON");
    let err = doc.get("error").expect("body must hold \"error\"");
    let code = err
        .get("code")
        .and_then(Json::as_str)
        .expect("error.code must be a string");
    err.get("message")
        .and_then(Json::as_str)
        .expect("error.message must be a string");
    code.to_owned()
}

/// One request over a fresh connection.
fn rpc(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    write_request(&mut stream, method, path, body, false).expect("write request");
    read_response(&mut reader).expect("read response")
}

fn predict_body(seed: u64) -> Vec<u8> {
    format!(
        r#"{{"model":"uvsd_sim","seed":{seed},"input":{{"spec":{{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}}}}"#
    )
    .into_bytes()
}

#[test]
fn predict_metrics_drain_lifecycle() {
    let mut server = start(64, 4, 2);
    let addr = server.addr().to_string();

    assert_eq!(rpc(&addr, "GET", "/healthz", None).status, 200);

    let ready = rpc(&addr, "GET", "/readyz", None);
    assert_eq!(ready.status, 200);
    let doc = Json::parse(&ready.body_text()).unwrap();
    assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(true));
    let models = doc.get("models").and_then(Json::as_array).unwrap();
    assert_eq!(models.len(), 2);

    // A predict round-trip with the full explanation payload.
    let resp = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let doc = Json::parse(&resp.body_text()).unwrap();
    assert!(matches!(
        doc.get("assessment").and_then(Json::as_str),
        Some("Stressed") | Some("Unstressed")
    ));
    let score = doc.get("score").and_then(Json::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&score));
    assert!(doc.get("description").unwrap().get("text").is_some());
    assert!(doc.get("highlighted_regions").is_some());

    // An explain round-trip: per-segment attribution over the same input.
    let explain = rpc(
        &addr,
        "POST",
        "/v1/explain",
        Some(
            br#"{"model":"uvsd_sim","seed":42,"method":"lime","budget":8,"input":{"spec":{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}"#,
        ),
    );
    assert_eq!(explain.status, 200, "{}", explain.body_text());
    let doc = Json::parse(&explain.body_text()).unwrap();
    assert_eq!(doc.get("method").and_then(Json::as_str), Some("lime"));
    let segments = doc.get("segments").and_then(Json::as_u64).unwrap();
    let scores = doc.get("scores").and_then(Json::as_array).unwrap();
    assert_eq!(scores.len() as u64, segments);
    assert!(segments > 0);

    // Every served model is listed with its provenance.
    let models = rpc(&addr, "GET", "/v1/models", None);
    assert_eq!(models.status, 200);
    let doc = Json::parse(&models.body_text()).unwrap();
    let listed = doc.get("models").and_then(Json::as_array).unwrap();
    assert_eq!(listed.len(), 2);
    for m in listed {
        assert!(m.get("name").and_then(Json::as_str).is_some());
        assert_eq!(m.get("version").and_then(Json::as_u64), Some(1));
        let hash = m.get("content_hash").and_then(Json::as_str).unwrap();
        assert_eq!(hash.len(), 8, "content hash is 8 hex chars: {hash}");
        assert_eq!(m.get("source").and_then(Json::as_str), Some("untrained"));
    }

    // Rejections map to their statuses, all under the one error schema.
    let unknown = rpc(
        &addr,
        "POST",
        "/v1/predict",
        Some(br#"{"model":"nope","seed":1,"input":{"spec":{"subject_seed":1,"condition":"stressed"}}}"#),
    );
    assert_eq!(unknown.status, 404);
    assert_eq!(assert_error_schema(&unknown), "model_not_found");
    let bad = rpc(&addr, "POST", "/v1/predict", Some(b"{oops"));
    assert_eq!(bad.status, 400);
    assert_eq!(assert_error_schema(&bad), "bad_request");
    let wrong_method = rpc(&addr, "GET", "/v1/predict", None);
    assert_eq!(wrong_method.status, 405);
    assert_eq!(assert_error_schema(&wrong_method), "method_not_allowed");
    let no_route = rpc(&addr, "GET", "/no/such/route", None);
    assert_eq!(no_route.status, 404);
    assert_eq!(assert_error_schema(&no_route), "not_found");

    // Metrics reflect the traffic above.
    let metrics = rpc(&addr, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    let text = metrics.body_text();
    assert!(text.contains("serve_predict_requests_total 1"), "{text}");
    assert!(text.contains("serve_predict_latency_seconds{quantile=\"0.5\"}"));
    assert!(text.contains("serve_queue_depth"));

    // Admin shutdown flags the request; drain leaves the port closed.
    let bye = rpc(&addr, "POST", "/admin/shutdown", Some(b"{}"));
    assert_eq!(bye.status, 200);
    assert!(server.shutdown_requested());
    server.shutdown();
    // Listener is gone: a fresh connection must fail (or be reset without
    // an accept; either way no response arrives).
    match TcpStream::connect(&addr) {
        Err(_) => {}
        Ok(mut s) => {
            let mut r = BufReader::new(s.try_clone().unwrap());
            write_request(&mut s, "GET", "/healthz", None, false).ok();
            assert!(read_response(&mut r).is_err(), "served after shutdown");
        }
    }
}

#[test]
fn overload_answers_429_with_retry_after() {
    // One running slot, one queue slot, and max-length chains: while the
    // first request decodes its 8 chain repeats, the queue stays full and
    // admission control must kick in.
    let mut server = start(1, 1, 1);
    let addr = server.addr().to_string();

    let long_body = |seed: u64| {
        format!(
            r#"{{"model":"uvsd_sim","seed":{seed},"chain_repeats":8,"input":{{"spec":{{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}}}}"#
        )
        .into_bytes()
    };
    let responses: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let addr = &addr;
                let body = long_body(i);
                scope.spawn(move || rpc(addr, "POST", "/v1/predict", Some(&body)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = responses.iter().filter(|r| r.status == 200).count();
    let rejected: Vec<_> = responses.iter().filter(|r| r.status == 429).collect();
    assert!(ok >= 1, "at least the first admitted request must succeed");
    assert!(
        !rejected.is_empty(),
        "a 1-slot queue under 6 concurrent requests must reject"
    );
    assert_eq!(ok + rejected.len(), responses.len());
    for r in &rejected {
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(assert_error_schema(r), "queue_full");
        // The schema carries the retry hint in-band too.
        let doc = Json::parse(&r.body_text()).unwrap();
        assert_eq!(
            doc.get("error")
                .unwrap()
                .get("retry_after")
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(metrics.contains("serve_queue_rejected_total"), "{metrics}");
    server.shutdown();
}

#[test]
fn responses_are_byte_identical_across_batch_and_thread_shapes() {
    let mut reference: Option<String> = None;
    for (max_running, threads) in [(1, 1), (4, 1), (1, 4), (4, 4)] {
        let mut server = start(64, max_running, threads);
        let addr = server.addr().to_string();

        // Decoy traffic with different seeds keeps the scheduler busy so
        // the target request runs with differently-composed co-tenants per
        // shape.
        let target: String = std::thread::scope(|scope| {
            for d in 0..3u64 {
                let addr = &addr;
                scope.spawn(move || {
                    for k in 0..3 {
                        rpc(
                            addr,
                            "POST",
                            "/v1/predict",
                            Some(&predict_body(1000 + d * 10 + k)),
                        );
                    }
                });
            }
            let addr = &addr;
            scope
                .spawn(move || {
                    let mut bodies = Vec::new();
                    for _ in 0..3 {
                        let resp = rpc(addr, "POST", "/v1/predict", Some(&predict_body(42)));
                        assert_eq!(resp.status, 200);
                        bodies.push(resp.body_text());
                    }
                    assert!(
                        bodies.iter().all(|b| b == &bodies[0]),
                        "same request diverged within one server"
                    );
                    bodies.remove(0)
                })
                .join()
                .unwrap()
        });

        match &reference {
            None => reference = Some(target),
            Some(r) => assert_eq!(
                &target, r,
                "response bytes changed at max_running={max_running} threads={threads}"
            ),
        }
        server.shutdown();
    }
}

#[test]
fn reload_hot_swaps_without_changing_deterministic_responses() {
    let mut server = start(64, 4, 2);
    let addr = server.addr().to_string();

    let before = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(before.status, 200);

    let reload = rpc(&addr, "POST", "/admin/reload", Some(b"{}"));
    assert_eq!(reload.status, 200, "{}", reload.body_text());
    let doc = Json::parse(&reload.body_text()).unwrap();
    assert_eq!(doc.get("reloaded").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("models").and_then(Json::as_array).unwrap().len(), 2);

    // The provider is deterministic, so the swapped-in registry serves
    // byte-identical responses — reload is invisible to correct clients.
    let after = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(after.status, 200);
    assert_eq!(before.body_text(), after.body_text());

    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(metrics.contains("serve_reloads_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn artifact_boot_serves_identical_bytes_with_zero_training() {
    use serve::{ArtifactProvider, ModelProvider, Registry};

    // Persist the untrained registry as artifacts...
    let dir = std::env::temp_dir().join("srcr_loopback_artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    for f in std::fs::read_dir(&dir).unwrap().flatten() {
        std::fs::remove_file(f.path()).ok();
    }
    let source = Registry::untrained(SEED);
    for entry in source.entries() {
        let meta = chain_reason::ArtifactMeta {
            name: entry.name.clone(),
            version: 2,
            scale: 0.0,
            variant: "untrained".to_string(),
            seed: SEED,
            git: "test".to_string(),
        };
        chain_reason::save_pipeline(
            &dir.join(format!("{}.srcr", entry.name)),
            &entry.pipeline,
            &entry.world,
            &meta,
        )
        .unwrap();
    }

    // ...and boot two servers: one from memory, one from the artifacts.
    let mut trained_like = start(64, 4, 2);
    let provider = ArtifactProvider { dir: dir.clone() };
    let expected_hashes: Vec<u32> = provider
        .provide()
        .unwrap()
        .entries()
        .iter()
        .map(|e| e.content_hash)
        .collect();
    let mut from_disk = Server::start(
        provider,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("boot from artifacts");

    let a = rpc(
        &trained_like.addr().to_string(),
        "POST",
        "/v1/predict",
        Some(&predict_body(42)),
    );
    let b = rpc(
        &from_disk.addr().to_string(),
        "POST",
        "/v1/predict",
        Some(&predict_body(42)),
    );
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_eq!(
        a.body_text(),
        b.body_text(),
        "artifact-loaded pipeline must serve byte-identical responses"
    );

    // /v1/models reports the artifact provenance.
    let models = rpc(&from_disk.addr().to_string(), "GET", "/v1/models", None);
    let doc = Json::parse(&models.body_text()).unwrap();
    let listed = doc.get("models").and_then(Json::as_array).unwrap();
    assert_eq!(listed.len(), 2);
    for (m, expected) in listed.iter().zip(&expected_hashes) {
        assert_eq!(m.get("version").and_then(Json::as_u64), Some(2));
        assert_eq!(
            m.get("content_hash").and_then(Json::as_str).unwrap(),
            format!("{expected:08x}")
        );
        assert!(m
            .get("source")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("artifact:"));
    }

    trained_like.shutdown();
    from_disk.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_reload_keeps_prior_registry_serving_identical_bytes() {
    use serve::{ArtifactProvider, Registry};

    // Boot from a good artifact directory...
    let dir = std::env::temp_dir().join("srcr_loopback_reload_fail");
    std::fs::create_dir_all(&dir).unwrap();
    for f in std::fs::read_dir(&dir).unwrap().flatten() {
        std::fs::remove_file(f.path()).ok();
    }
    let source = Registry::untrained(SEED);
    for entry in source.entries() {
        let meta = chain_reason::ArtifactMeta {
            name: entry.name.clone(),
            version: 1,
            scale: 0.0,
            variant: "untrained".to_string(),
            seed: SEED,
            git: "test".to_string(),
        };
        chain_reason::save_pipeline(
            &dir.join(format!("{}.srcr", entry.name)),
            &entry.pipeline,
            &entry.world,
            &meta,
        )
        .unwrap();
    }
    let mut server = Server::start(
        ArtifactProvider { dir: dir.clone() },
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("boot from artifacts");
    let addr = server.addr().to_string();

    let before = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(before.status, 200);

    // ...then corrupt every artifact on disk and ask for a reload.
    for f in std::fs::read_dir(&dir).unwrap().flatten() {
        let mut bytes = std::fs::read(f.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(f.path(), bytes).unwrap();
    }
    let reload = rpc(&addr, "POST", "/admin/reload", Some(b"{}"));
    assert_eq!(reload.status, 500, "{}", reload.body_text());
    assert_eq!(assert_error_schema(&reload), "reload_failed");

    // The prior registry keeps serving, byte-identical to before.
    let after = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(after.status, 200);
    assert_eq!(before.body_text(), after.body_text());

    // No successful reload was recorded.
    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(metrics.contains("serve_reloads_total 0"), "{metrics}");

    // Repeated failures open the circuit breaker: reloads short-circuit
    // with 503 + Retry-After while predict stays untouched.
    let mut breaker_opened = false;
    for _ in 0..4 {
        let r = rpc(&addr, "POST", "/admin/reload", Some(b"{}"));
        if r.status == 503 {
            assert_eq!(assert_error_schema(&r), "reload_circuit_open");
            assert!(r.header("retry-after").is_some());
            breaker_opened = true;
            break;
        }
        assert_eq!(r.status, 500);
    }
    assert!(breaker_opened, "breaker must open after repeated failures");
    let still = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(still.status, 200);
    assert_eq!(before.body_text(), still.body_text());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
