//! Chaos loopback suite: a real server on an ephemeral port with a seeded
//! [`runtime::faults`] plan armed, driven by real TCP clients.
//!
//! Invariants under fault injection (ISSUE: robustness tentpole):
//! - the process never dies — injected socket errors, worker panics and
//!   reload failures are absorbed per-request / per-connection;
//! - every non-2xx response follows the unified error schema
//!   `{"error":{"code","message","retry_after"?}}`;
//! - requests the plan did NOT fault return bytes identical to a no-fault
//!   control run, at any thread count — chaos never perturbs the
//!   deterministic serving contract.
//!
//! The fault plan is process-global, so every test here takes `GUARD`
//! (poison-tolerant: a failed test must not wedge the rest) and disarms
//! through a drop guard even on panic.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use runtime::faults::{self, FaultKind, FaultPlan};
use serve::http::{read_response, write_request, ClientResponse, HttpError};
use serve::json::Json;
use serve::{SchedConfig, Server, ServerConfig, UntrainedProvider};

const SEED: u64 = 11;

/// Serialise tests: the armed fault plan is process-wide state.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms the plan when dropped, so a panicking assertion cannot leave
/// faults armed for the next test.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm();
    }
}

fn start(config: ServerConfig) -> Server {
    Server::start(UntrainedProvider { seed: SEED }, config).expect("bind loopback server")
}

fn config(threads: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        sched: SchedConfig {
            queue_cap: 256,
            max_running: 4,
            ..SchedConfig::default()
        },
        threads,
        ..ServerConfig::default()
    }
}

/// One request over a fresh connection; transport failures (injected
/// socket faults killing the connection) surface as `Err`.
fn try_rpc(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<ClientResponse, HttpError> {
    let io = |e: std::io::Error| HttpError::Io(e.to_string());
    let mut stream = TcpStream::connect(addr).map_err(io)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(io)?);
    write_request(&mut stream, method, path, body, false).map_err(io)?;
    read_response(&mut reader)
}

fn rpc(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> ClientResponse {
    try_rpc(addr, method, path, body).expect("fault-free rpc")
}

/// Assert a non-2xx response follows the unified error schema; return
/// `error.code`.
fn assert_error_schema(resp: &ClientResponse) -> String {
    let doc = Json::parse(&resp.body_text()).expect("error body must be JSON");
    let err = doc.get("error").expect("body must hold \"error\"");
    let code = err
        .get("code")
        .and_then(Json::as_str)
        .expect("error.code must be a string");
    err.get("message")
        .and_then(Json::as_str)
        .expect("error.message must be a string");
    code.to_owned()
}

fn predict_body(seed: u64) -> Vec<u8> {
    format!(
        r#"{{"model":"uvsd_sim","seed":{seed},"input":{{"spec":{{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}}}}"#
    )
    .into_bytes()
}

fn explain_body(seed: u64) -> Vec<u8> {
    format!(
        r#"{{"model":"uvsd_sim","seed":{seed},"method":"lime","budget":8,"input":{{"spec":{{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}}}}"#
    )
    .into_bytes()
}

/// The headline chaos test: ≥200 requests across 4 client threads against
/// a server with socket-error and worker-panic faults armed.  The server
/// survives, every error is schema-conforming, and every successful
/// response is byte-identical to the no-fault control run.
#[test]
fn chaos_sweep_survives_with_schema_errors_and_control_identical_successes() {
    let _g = lock();
    faults::disarm();
    let _disarm = Disarm;

    const PREDICT_SEEDS: u64 = 8;
    const EXPLAIN_SEEDS: u64 = 2;

    // Control run: no faults, collect reference bytes per request shape.
    let mut server = start(config(4));
    let addr = server.addr().to_string();
    let control_predict: Vec<String> = (0..PREDICT_SEEDS)
        .map(|s| {
            let r = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(s)));
            assert_eq!(r.status, 200, "{}", r.body_text());
            r.body_text()
        })
        .collect();
    let control_explain: Vec<String> = (0..EXPLAIN_SEEDS)
        .map(|s| {
            let r = rpc(&addr, "POST", "/v1/explain", Some(&explain_body(s)));
            assert_eq!(r.status, 200, "{}", r.body_text());
            r.body_text()
        })
        .collect();
    server.shutdown();

    // Chaos run: same workload shape against an armed server.
    faults::arm(
        FaultPlan::new(7)
            .with("socket.read", FaultKind::Error, 0.02)
            .with("socket.write", FaultKind::Error, 0.02)
            .with("worker.exec", FaultKind::Panic, 0.02),
    );
    let mut server = start(config(4));
    let addr = server.addr().to_string();

    let (ok, non2xx, transport) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let addr = &addr;
                let control_predict = &control_predict;
                let control_explain = &control_explain;
                scope.spawn(move || {
                    let (mut ok, mut non2xx, mut transport) = (0u32, 0u32, 0u32);
                    for i in 0..52u64 {
                        let n = t * 52 + i;
                        // Mixed workload: mostly predicts, some explains.
                        let (path, body, control) = if n % 13 == 0 {
                            let s = n % EXPLAIN_SEEDS;
                            ("/v1/explain", explain_body(s), &control_explain[s as usize])
                        } else {
                            let s = n % PREDICT_SEEDS;
                            ("/v1/predict", predict_body(s), &control_predict[s as usize])
                        };
                        match try_rpc(addr, "POST", path, Some(&body)) {
                            Err(_) => transport += 1, // injected socket fault
                            Ok(resp) if resp.status == 200 => {
                                assert_eq!(
                                    &resp.body_text(),
                                    control,
                                    "fault-free response diverged from control (request {n})"
                                );
                                ok += 1;
                            }
                            Ok(resp) => {
                                assert_error_schema(&resp);
                                non2xx += 1;
                            }
                        }
                    }
                    (ok, non2xx, transport)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u32, 0u32, 0u32), |(a, b, c), (x, y, z)| {
                (a + x, b + y, c + z)
            })
    });

    assert_eq!(ok + non2xx + transport, 208);
    assert!(
        ok >= 104,
        "most requests must survive p=0.02 faults: ok={ok}"
    );
    assert!(
        faults::injected_total() > 0,
        "the plan must actually have fired"
    );

    // The process is still healthy once the plan is disarmed.
    faults::disarm();
    assert_eq!(rpc(&addr, "GET", "/healthz", None).status, 200);
    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(metrics.contains("serve_faults_injected_total"), "{metrics}");
    assert!(metrics.contains("serve_worker_panics_total"), "{metrics}");
    server.shutdown();
}

/// A worker panic mid-round fails only the faulted request: its 500 is
/// schema-conforming, every co-tenant in the running batch still gets
/// bytes identical to the fault-free control.
#[test]
fn worker_panic_mid_round_fails_only_that_request() {
    let _g = lock();
    faults::disarm();
    let _disarm = Disarm;

    // max_running 4 lets the concurrent requests share scheduler rounds.
    let mut server = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        sched: SchedConfig {
            queue_cap: 64,
            max_running: 4,
            ..SchedConfig::default()
        },
        threads: 2,
        ..ServerConfig::default()
    });
    let addr = server.addr().to_string();
    let control = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(5)));
    assert_eq!(control.status, 200);
    let control = control.body_text();

    // Exactly one worker.exec consult panics; all requests share a seed,
    // so every survivor must be byte-identical to control.
    faults::arm(FaultPlan::new(3).with_capped("worker.exec", FaultKind::Panic, 1.0, 1));
    let responses: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = &addr;
                scope.spawn(move || rpc(addr, "POST", "/v1/predict", Some(&predict_body(5))))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let panicked: Vec<_> = responses.iter().filter(|r| r.status == 500).collect();
    assert_eq!(panicked.len(), 1, "exactly one request absorbs the panic");
    assert_eq!(assert_error_schema(panicked[0]), "worker_panicked");
    for r in responses.iter().filter(|r| r.status != 500) {
        assert_eq!(r.status, 200);
        assert_eq!(r.body_text(), control, "sibling request diverged");
    }

    // The pool survives the unwind: later requests are untouched.
    faults::disarm();
    let after = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(5)));
    assert_eq!(after.status, 200);
    assert_eq!(after.body_text(), control);
    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(metrics.contains("serve_worker_panics_total 1"), "{metrics}");
    server.shutdown();
}

/// A fault at the `reload.swap` point mid-swap rolls back to the last-good
/// registry: the reload reports 500, the rollback is counted, and the
/// server keeps serving byte-identical responses.
#[test]
fn reload_swap_fault_rolls_back_to_last_good_registry() {
    let _g = lock();
    faults::disarm();
    let _disarm = Disarm;

    let mut server = start(config(2));
    let addr = server.addr().to_string();
    let before = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(before.status, 200);

    faults::arm(FaultPlan::new(9).with_capped("reload.swap", FaultKind::Error, 1.0, 1));
    let reload = rpc(&addr, "POST", "/admin/reload", Some(b"{}"));
    assert_eq!(reload.status, 500, "{}", reload.body_text());
    assert_eq!(assert_error_schema(&reload), "reload_failed");

    let after = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(after.status, 200);
    assert_eq!(
        before.body_text(),
        after.body_text(),
        "rollback must be invisible"
    );
    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(
        metrics.contains("serve_reload_rollbacks_total 1"),
        "{metrics}"
    );

    // The cap is spent: the next reload goes through cleanly.
    let retry = rpc(&addr, "POST", "/admin/reload", Some(b"{}"));
    assert_eq!(retry.status, 200, "{}", retry.body_text());
    let still = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(42)));
    assert_eq!(before.body_text(), still.body_text());
    server.shutdown();
}

/// With a deadline configured, requests that cannot finish in time answer
/// 503 `deadline_exceeded` with a retry hint instead of hanging.
#[test]
fn expired_deadline_answers_503_with_retry_hint() {
    let _g = lock();
    faults::disarm();
    let _disarm = Disarm;

    let mut server = start(ServerConfig {
        deadline: Some(Duration::ZERO),
        ..config(2)
    });
    let addr = server.addr().to_string();

    let resp = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(1)));
    assert_eq!(resp.status, 503, "{}", resp.body_text());
    assert_eq!(assert_error_schema(&resp), "deadline_exceeded");
    assert_eq!(resp.header("retry-after"), Some("1"));
    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(
        metrics.contains("serve_deadline_exceeded_total 1"),
        "{metrics}"
    );
    server.shutdown();
}

/// Over the explain in-flight cap, `/v1/explain` degrades to
/// cached-or-429 while `/v1/predict` keeps answering normally.
#[test]
fn explain_sheds_under_pressure_while_predict_stays_live() {
    let _g = lock();
    faults::disarm();
    let _disarm = Disarm;

    let mut server = start(ServerConfig {
        max_inflight_explain: 1,
        ..config(8)
    });
    let addr = server.addr().to_string();

    // Warm the response cache with one body, then storm the endpoint with
    // that body plus distinct uncached ones.
    let warm = rpc(&addr, "POST", "/v1/explain", Some(&explain_body(999)));
    assert_eq!(warm.status, 200, "{}", warm.body_text());
    let warm = warm.body_text();

    let (cached_ok, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12u64)
            .map(|i| {
                let addr = &addr;
                let warm = &warm;
                scope.spawn(move || {
                    // Even slots replay the cached body, odd slots are new.
                    let seed = if i % 2 == 0 { 999 } else { 1000 + i };
                    let r = rpc(addr, "POST", "/v1/explain", Some(&explain_body(seed)));
                    match r.status {
                        200 => {
                            if seed == 999 {
                                // Cached or computed, the bytes must match.
                                assert_eq!(&r.body_text(), warm, "cached explain diverged");
                                (1u32, 0u32)
                            } else {
                                (0, 0)
                            }
                        }
                        429 => {
                            assert_eq!(assert_error_schema(&r), "explain_shed");
                            assert_eq!(r.header("retry-after"), Some("1"));
                            (0, 1)
                        }
                        other => panic!("explain answered {other}: {}", r.body_text()),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u32, 0u32), |(a, b), (x, y)| (a + x, b + y))
    });
    assert!(
        cached_ok >= 1,
        "cached-body explains must keep answering 200"
    );

    // Predict was never degraded.
    let p = rpc(&addr, "POST", "/v1/predict", Some(&predict_body(7)));
    assert_eq!(p.status, 200, "{}", p.body_text());

    let metrics = rpc(&addr, "GET", "/metrics", None).body_text();
    assert!(metrics.contains("serve_requests_shed_total"), "{metrics}");
    if shed > 0 {
        assert!(
            !metrics.contains("serve_requests_shed_total 0"),
            "{metrics}"
        );
    }
    server.shutdown();
}
