//! Property-based tests for the hand-rolled HTTP/1.1 request parser.

use std::io::Cursor;

use proptest::prelude::*;
use serve::http::{parse_request, HttpError, MAX_REQUEST_LINE};

proptest! {
    /// The parser is total: arbitrary bytes never panic it — they parse,
    /// hit clean EOF, or map to a typed error.
    #[test]
    fn parser_total_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let _ = parse_request(&mut Cursor::new(bytes));
    }

    /// `Content-Length` framing recovers the exact body at every size.
    #[test]
    fn content_length_framing_round_trips(n in 0usize..600) {
        let body: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let mut wire =
            format!("POST /v1/predict HTTP/1.1\r\nContent-Length: {n}\r\n\r\n").into_bytes();
        wire.extend_from_slice(&body);
        let req = parse_request(&mut Cursor::new(wire)).unwrap().unwrap();
        prop_assert_eq!(req.body, body);
    }

    /// Cutting a valid request at any interior byte is detected: the
    /// parser never fabricates a complete request from a truncated one.
    #[test]
    fn truncation_never_yields_a_request(cut in 1usize..60) {
        let wire = b"POST /p HTTP/1.1\r\nContent-Length: 20\r\n\r\n01234567890123456789";
        prop_assume!(cut < wire.len());
        match parse_request(&mut Cursor::new(wire[..cut].to_vec())) {
            Err(_) => {}
            Ok(got) => prop_assert!(false, "truncated parse yielded {got:?}"),
        }
    }

    /// Request lines beyond the limit are rejected as oversized, no
    /// matter how far beyond the limit they go.
    #[test]
    fn oversized_request_line_is_bounded(extra in 1usize..64) {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + extra));
        prop_assert_eq!(
            parse_request(&mut Cursor::new(raw.into_bytes())).unwrap_err(),
            HttpError::HeadersTooLarge
        );
    }

    /// A keep-alive stream of pipelined requests parses each in turn and
    /// ends with a clean EOF.
    #[test]
    fn keep_alive_pipelining(k in 1usize..6, n in 0usize..32) {
        let mut wire = Vec::new();
        for _ in 0..k {
            wire.extend_from_slice(
                format!("POST /e HTTP/1.1\r\nContent-Length: {n}\r\n\r\n").as_bytes(),
            );
            wire.extend(std::iter::repeat_n(b'x', n));
        }
        let mut cur = Cursor::new(wire);
        for _ in 0..k {
            let req = parse_request(&mut cur).unwrap().unwrap();
            prop_assert_eq!(req.body.len(), n);
            prop_assert!(req.keep_alive());
        }
        prop_assert!(parse_request(&mut cur).unwrap().is_none());
    }
}
