//! The continuous-batching determinism contract, end-to-end over real TCP:
//!
//! - a request with a fixed seed returns byte-identical responses no
//!   matter the scheduler policy, running-batch cap, KV page size, worker
//!   thread count, or which co-tenants share its rounds;
//! - a chain preamble shared by concurrent requests is prefilled once and
//!   adopted by every co-tenant (`serve_prefix_hit_tokens_total` vs
//!   `serve_prefill_tokens_total`);
//! - every KV page returns to the slab once the scheduler drains.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::Ordering;

use serve::http::{read_response, write_request, ClientResponse};
use serve::{SchedConfig, SchedPolicy, Server, ServerConfig, UntrainedProvider};

const SEED: u64 = 11;

fn start(sched: SchedConfig, threads: usize) -> Server {
    Server::start(
        UntrainedProvider { seed: SEED },
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            sched,
            threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// One request over a fresh connection.
fn rpc(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    write_request(&mut stream, method, path, body, false).expect("write request");
    read_response(&mut reader).expect("read response")
}

/// The i-th workload request: a small pool of shapes (so co-tenants share
/// chain preambles) crossed with short/long `chain_repeats`.
fn predict_body(i: usize) -> Vec<u8> {
    let sample = i % 3;
    let repeats = if i % 4 == 3 { 4 } else { 1 };
    format!(
        r#"{{"model":"uvsd_sim","seed":{},"chain_repeats":{repeats},"input":{{"spec":{{"subject_seed":3,"condition":"stressed","sample_id":{sample},"num_frames":4}}}}}}"#,
        SEED + sample as u64,
    )
    .into_bytes()
}

/// Fire `n` requests concurrently and collect the bodies in request order.
fn concurrent_predicts(addr: &str, n: usize) -> Vec<String> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let addr = &addr;
                scope.spawn(move || {
                    let resp = rpc(addr, "POST", "/v1/predict", Some(&predict_body(i)));
                    assert_eq!(resp.status, 200, "{}", resp.body_text());
                    resp.body_text()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// The tentpole invariant: the same workload yields the same bytes per
/// request across every scheduler shape — policy, running-batch cap, page
/// granularity and thread count all included.  The reference shape is the
/// degenerate one (one request at a time, tiny pages, one worker), so any
/// co-tenancy effect in the wider shapes would show up as a diff.
#[test]
fn bytes_identical_across_policy_page_size_and_thread_shapes() {
    const N: usize = 8;
    let reference = {
        let mut server = start(
            SchedConfig {
                max_running: 1,
                page_rows: 4,
                ..SchedConfig::default()
            },
            1,
        );
        let bodies = concurrent_predicts(&server.addr().to_string(), N);
        server.shutdown();
        bodies
    };

    let shapes = [
        (SchedPolicy::Continuous, 2, 16, 1),
        (SchedPolicy::Continuous, 4, 64, 4),
        (SchedPolicy::Continuous, 4, 4, 4),
        (SchedPolicy::Window, 4, 16, 4),
    ];
    for (policy, max_running, page_rows, threads) in shapes {
        let mut server = start(
            SchedConfig {
                max_running,
                page_rows,
                policy,
                ..SchedConfig::default()
            },
            threads,
        );
        let bodies = concurrent_predicts(&server.addr().to_string(), N);
        server.shutdown();
        for (i, (got, want)) in bodies.iter().zip(&reference).enumerate() {
            assert_eq!(
                got, want,
                "request {i} diverged under policy={policy:?} \
                 max_running={max_running} page_rows={page_rows} threads={threads}"
            );
        }
    }
}

/// Four co-tenants sharing one request shape must prefill the chain
/// preamble once: the co-tenant run embeds barely more rows than a single
/// request does alone, and the rest arrive as prefix-cache adoptions.
#[test]
fn shared_preamble_prefills_once_across_co_tenants() {
    let body = predict_body(0);
    let solo_prefill = {
        let mut server = start(SchedConfig::default(), 2);
        let resp = rpc(
            &server.addr().to_string(),
            "POST",
            "/v1/predict",
            Some(&body),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let prefill = server.metrics().prefill_tokens.load(Ordering::Relaxed);
        server.shutdown();
        prefill
    };
    assert!(solo_prefill > 0, "a lone request must prefill its context");

    let mut server = start(SchedConfig::default(), 4);
    let addr = server.addr().to_string();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (addr, body) = (&addr, &body);
                scope.spawn(move || {
                    let resp = rpc(addr, "POST", "/v1/predict", Some(body));
                    assert_eq!(resp.status, 200, "{}", resp.body_text());
                    resp.body_text()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "identical requests must answer identically");
    }
    let metrics = server.metrics();
    let co_prefill = metrics.prefill_tokens.load(Ordering::Relaxed);
    let adopted = metrics.prefix_hit_tokens.load(Ordering::Relaxed);
    server.shutdown();
    assert!(
        adopted > 0,
        "co-tenants must adopt the shared preamble from the prefix cache"
    );
    assert!(
        co_prefill < solo_prefill + solo_prefill / 2,
        "4 co-tenants embedded {co_prefill} rows, a lone request {solo_prefill}: \
         the shared preamble was prefilled more than once"
    );
}

/// Drain leak-check over a bounded slab: after the scheduler drains, every
/// KV page is back in the free list — sessions, prefix-cache snapshots and
/// CoW copies all account for their pages.
#[test]
fn all_pages_return_to_the_slab_after_drain() {
    let mut server = start(
        SchedConfig {
            max_running: 4,
            kv_pages: 512,
            page_rows: 8,
            ..SchedConfig::default()
        },
        2,
    );
    let bodies = concurrent_predicts(&server.addr().to_string(), 8);
    assert_eq!(bodies.len(), 8);
    let metrics = server.metrics();
    server.shutdown();
    assert_eq!(
        metrics.kv_pages_in_use.load(Ordering::Relaxed),
        0,
        "pages leaked past drain"
    );
    assert!(metrics.kv_pages_total.load(Ordering::Relaxed) > 0);
}
