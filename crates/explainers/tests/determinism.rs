//! The runtime's core invariant, end to end: explainer attributions are
//! **bit-identical** between `--threads 1` and `--threads N`, because masks
//! are generated up front from the seeded RNG and evaluated through the
//! order-preserving pool.

use explainers::{kernel_shap, lime, sobol_total_indices, Attribution};
use videosynth::image::Image;
use videosynth::slic::{slic, Segmentation};

fn fixture() -> (Image, Segmentation) {
    let mut img = Image::filled(32, 32, 0.3);
    for y in 0..32 {
        for x in 0..32 {
            // Non-trivial texture so the black box has structure to find.
            let v = 0.3 + 0.4 * ((x as f32 * 0.7).sin() * (y as f32 * 0.45).cos()).abs();
            img.set(x, y, v);
        }
    }
    let seg = slic(&img, 16, 0.1, 3);
    (img, seg)
}

/// A score with per-segment structure: weighted mean of two segments.
fn score_fn(seg: &Segmentation) -> impl Fn(&Image) -> f32 + Sync + '_ {
    let a = seg.pixels_of(0);
    let b = seg.pixels_of(seg.num_segments() - 1);
    move |im: &Image| {
        let ma = a.iter().map(|&(x, y)| im.get(x, y)).sum::<f32>() / a.len() as f32;
        let mb = b.iter().map(|&(x, y)| im.get(x, y)).sum::<f32>() / b.len() as f32;
        ma + 2.0 * mb
    }
}

/// Run all three explainers at the given pool width.
fn run_all(threads: usize, seed: u64) -> [Attribution; 3] {
    runtime::set_threads(threads);
    let (img, seg) = fixture();
    let f = score_fn(&seg);
    let out = [
        lime(&img, &seg, &f, 64, seed),
        kernel_shap(&img, &seg, &f, 64, seed),
        sobol_total_indices(&img, &seg, &f, 8, seed),
    ];
    runtime::set_threads(0);
    out
}

#[test]
fn attributions_bit_identical_across_thread_counts() {
    for seed in [0u64, 1, 7, 42] {
        let single = run_all(1, seed);
        for threads in [2usize, 4, 8] {
            let multi = run_all(threads, seed);
            for (s, m) in single.iter().zip(&multi) {
                // Attribution equality is exact f32 equality — bit-identical.
                assert_eq!(s, m, "seed {seed}, {threads} threads");
            }
        }
    }
}

#[test]
fn repeated_runs_are_stable_on_the_global_pool() {
    let (img, seg) = fixture();
    let f = score_fn(&seg);
    let a = lime(&img, &seg, &f, 64, 5);
    let b = lime(&img, &seg, &f, 64, 5);
    assert_eq!(a, b);
}
