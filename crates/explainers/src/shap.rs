//! KernelSHAP (Lundberg & Lee, NeurIPS 2017) over SLIC superpixels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use videosynth::image::Image;
use videosynth::slic::Segmentation;

use crate::attribution::Attribution;
use crate::executor::{Mask, MaskExecutor};
use crate::linalg::weighted_ridge;

/// Shapley kernel weight for a coalition of size `s` out of `m` players:
/// `(m − 1) / (C(m, s) · s · (m − s))`.  Degenerate sizes (0, m) have
/// infinite weight and are handled separately.
pub fn shapley_kernel(m: usize, s: usize) -> f64 {
    assert!(s > 0 && s < m, "kernel undefined at the coalition extremes");
    (m as f64 - 1.0) / (binom(m, s) * s as f64 * (m - s) as f64)
}

fn binom(m: usize, s: usize) -> f64 {
    // Computed in log space to survive m = 64.
    let mut acc = 0.0f64;
    for i in 0..s {
        acc += ((m - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc.exp()
}

/// KernelSHAP attributions: sample coalitions with size drawn from the
/// (normalised) Shapley kernel, evaluate the black box on each masked
/// image, and solve the kernel-weighted least squares.  The empty and full
/// coalitions anchor the regression with a large weight (the standard
/// practical treatment of their infinite kernel weight).
///
/// Evaluations run through the global worker pool; see [`kernel_shap_in`]
/// to share an executor/cache.
pub fn kernel_shap<F: Fn(&Image) -> f32 + Sync>(
    image: &Image,
    seg: &Segmentation,
    score: F,
    n_samples: usize,
    seed: u64,
) -> Attribution {
    kernel_shap_in(&MaskExecutor::new(), image, seg, score, n_samples, seed)
}

/// [`kernel_shap`] with an explicit [`MaskExecutor`].
///
/// All coalitions are drawn from the seeded RNG up front (same stream as
/// the former evaluate-as-you-sample loop), then scored as one batch, so
/// attributions are bit-identical for any pool thread count.
pub fn kernel_shap_in<F: Fn(&Image) -> f32 + Sync>(
    exec: &MaskExecutor,
    image: &Image,
    seg: &Segmentation,
    score: F,
    n_samples: usize,
    seed: u64,
) -> Attribution {
    assert!(
        n_samples >= 8,
        "KernelSHAP needs a non-trivial sample budget"
    );
    let d = seg.num_segments();
    assert!(d >= 2, "need at least two segments");
    let fill = image.mean();
    let mut rng = StdRng::seed_from_u64(seed);

    // Size distribution ∝ kernel(s) · C(d, s) = (d−1)/(s·(d−s)).
    let size_weights: Vec<f64> = (1..d).map(|s| 1.0 / (s as f64 * (d - s) as f64)).collect();
    let total_w: f64 = size_weights.iter().sum();

    // Anchors first (empty and full coalitions), then sampled coalitions.
    let mut masks = Vec::with_capacity(n_samples + 2);
    masks.push(Mask::Binary(vec![false; d]));
    masks.push(Mask::Binary(vec![true; d]));

    let mut indices: Vec<usize> = (0..d).collect();
    let mut sizes = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        // Sample a coalition size from the kernel-induced distribution.
        let mut u = rng.random::<f64>() * total_w;
        let mut s = 1usize;
        for (i, w) in size_weights.iter().enumerate() {
            if u < *w {
                s = i + 1;
                break;
            }
            u -= w;
        }
        indices.shuffle(&mut rng);
        let mut keep = vec![false; d];
        for &i in indices.iter().take(s) {
            keep[i] = true;
        }
        masks.push(Mask::Binary(keep));
        sizes.push(s);
    }

    let ys = exec.evaluate(image, seg, fill, &masks, &score);

    const ANCHOR_WEIGHT: f32 = 1e4;
    let mut xs = Vec::with_capacity(masks.len() * d);
    let mut ws = Vec::with_capacity(masks.len());
    for (m, mask) in masks.iter().enumerate() {
        let Mask::Binary(keep) = mask else {
            unreachable!()
        };
        xs.extend(keep.iter().map(|&k| if k { 1.0f32 } else { 0.0 }));
        ws.push(match m {
            0 | 1 => ANCHOR_WEIGHT,
            _ => shapley_kernel(d, sizes[m - 2]) as f32 * d as f32, // rescaled for conditioning
        });
    }

    let (_, phi) = weighted_ridge(&xs, &ys, &ws, d, 1e-4);
    Attribution::new(phi.into_iter().map(|p| p as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::perturb::apply_mask;
    use videosynth::slic::slic;

    #[test]
    fn kernel_is_symmetric_and_positive() {
        for m in [4usize, 16, 64] {
            for s in 1..m {
                let w = shapley_kernel(m, s);
                assert!(w > 0.0);
                assert!((w - shapley_kernel(m, m - s)).abs() < 1e-12 * w.max(1.0));
            }
        }
    }

    #[test]
    fn kernel_peaks_at_extreme_sizes() {
        // Within 1..m−1 the kernel is U-shaped: s=1 outweighs s=m/2.
        let m = 16;
        assert!(shapley_kernel(m, 1) > shapley_kernel(m, 8));
    }

    #[test]
    fn binom_known_values() {
        assert!((binom(5, 2) - 10.0).abs() < 1e-9);
        assert!((binom(64, 1) - 64.0).abs() < 1e-6);
        // C(64, 32) ≈ 1.83e18 → ln ≈ 42.05.
        assert!(
            (binom(64, 32).ln() - 42.05).abs() < 0.1,
            "{}",
            binom(64, 32).ln()
        );
    }

    #[test]
    fn shap_finds_the_planted_segment() {
        let base = Image::filled(32, 32, 0.2);
        let seg = slic(&base, 16, 0.1, 3);
        let target = 7.min(seg.num_segments() - 1);
        let mut img = base.clone();
        for (x, y) in seg.pixels_of(target) {
            img.set(x, y, 1.0);
        }
        let pixels = seg.pixels_of(target);
        let f = move |im: &Image| {
            pixels.iter().map(|&(x, y)| im.get(x, y)).sum::<f32>() / pixels.len() as f32
        };
        let attr = kernel_shap(&img, &seg, f, 256, 0);
        assert_eq!(attr.top_k(1)[0], target, "{:?}", attr.scores());
    }

    #[test]
    fn shap_deterministic_in_seed() {
        let base = Image::filled(32, 32, 0.4);
        let seg = slic(&base, 9, 0.1, 3);
        let f = |img: &Image| img.mean();
        assert_eq!(
            kernel_shap(&base, &seg, f, 64, 2),
            kernel_shap(&base, &seg, f, 64, 2)
        );
    }

    #[test]
    fn shap_additivity_roughly_holds() {
        // Σφ ≈ f(x) − f(empty) thanks to the anchors.
        let base = Image::filled(32, 32, 0.3);
        let seg = slic(&base, 9, 0.1, 3);
        let mut img = base.clone();
        for (x, y) in seg.pixels_of(0) {
            img.set(x, y, 0.9);
        }
        let f = |im: &Image| im.mean() * 2.0;
        let fill = img.mean();
        let empty = apply_mask(&img, &seg, &vec![false; seg.num_segments()], fill);
        let expect = f(&img) - f(&empty);
        let attr = kernel_shap(&img, &seg, f, 512, 1);
        let total: f32 = attr.scores().iter().sum();
        assert!((total - expect).abs() < 0.05, "Σφ {total} vs {expect}");
    }
}
