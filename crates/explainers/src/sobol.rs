//! SOBOL explainer (Fel et al., NeurIPS 2021): total-order Sobol'
//! sensitivity indices of the model output with respect to per-segment
//! perturbation masks, estimated with the Jansen estimator over
//! quasi-Monte-Carlo mask matrices.

use videosynth::image::Image;
use videosynth::slic::Segmentation;

use crate::attribution::Attribution;
use crate::executor::{Mask, MaskExecutor};
use crate::qmc::QmcSequence;

pub use crate::executor::apply_soft_mask;

/// Estimate the total-order Sobol' index of every segment.
///
/// Uses two QMC matrices `A`, `B` of `n` rows each; for segment `i` the
/// hybrid matrix `AB_i` replaces column `i` of `A` with `B`'s.  The Jansen
/// total-index estimator is
/// `ST_i = Σ (f(A_j) − f(AB_i,j))² / (2 n Var(f))`.
/// Model evaluations: `n · (d + 2)` (≈ 1 000 for n = 15, d = 64).
///
/// Evaluations run through the global worker pool; see
/// [`sobol_total_indices_in`] to share an executor/cache.
pub fn sobol_total_indices<F: Fn(&Image) -> f32 + Sync>(
    image: &Image,
    seg: &Segmentation,
    score: F,
    n: usize,
    seed: u64,
) -> Attribution {
    sobol_total_indices_in(&MaskExecutor::new(), image, seg, score, n, seed)
}

/// [`sobol_total_indices`] with an explicit [`MaskExecutor`].
///
/// The full `n · (d + 2)` mask matrix (`A`, `B`, and every hybrid `AB_i`)
/// is generated up front and scored as one batch, so the indices are
/// bit-identical for any pool thread count.
pub fn sobol_total_indices_in<F: Fn(&Image) -> f32 + Sync>(
    exec: &MaskExecutor,
    image: &Image,
    seg: &Segmentation,
    score: F,
    n: usize,
    seed: u64,
) -> Attribution {
    assert!(n >= 4, "need at least a few QMC rows");
    let d = seg.num_segments();
    let fill = image.mean();

    let mut qa = QmcSequence::new(d, seed);
    let mut qb = QmcSequence::new(d, seed ^ 0xB0B0_B0B0);
    let a = qa.matrix(n);
    let b = qb.matrix(n);

    // Batch layout: A rows, then B rows, then the n·d hybrid rows AB_i
    // (column i of A replaced with B's), grouped by segment.
    let mut masks = Vec::with_capacity(n * (d + 2));
    masks.extend(a.iter().cloned().map(Mask::Soft));
    masks.extend(b.iter().cloned().map(Mask::Soft));
    for i in 0..d {
        for j in 0..n {
            let mut row = a[j].clone();
            row[i] = b[j][i];
            masks.push(Mask::Soft(row));
        }
    }

    let ys = exec.evaluate(image, seg, fill, &masks, &score);
    let (fa, rest) = ys.split_at(n);
    let (fb, fab) = rest.split_at(n);

    // Variance over the pooled A and B evaluations.
    let all: Vec<f32> = fa.iter().chain(fb).copied().collect();
    let mean = all.iter().sum::<f32>() / all.len() as f32;
    let var = all.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / all.len() as f32;

    let mut st = vec![0.0f32; d];
    for i in 0..d {
        let mut acc = 0.0f32;
        for j in 0..n {
            let diff = fa[j] - fab[i * n + j];
            acc += diff * diff;
        }
        st[i] = if var > 1e-12 {
            acc / (2.0 * n as f32 * var)
        } else {
            0.0
        };
    }
    Attribution::new(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::slic::slic;

    #[test]
    fn soft_mask_extremes() {
        let img = Image::filled(16, 16, 0.8);
        let seg = slic(&img, 4, 0.1, 2);
        let keep = vec![1.0f64; seg.num_segments()];
        assert_eq!(apply_soft_mask(&img, &seg, &keep, 0.5), img);
        let erase = vec![0.0f64; seg.num_segments()];
        let erased = apply_soft_mask(&img, &seg, &erase, 0.5);
        assert!(erased.pixels().iter().all(|&p| (p - 0.5).abs() < 1e-6));
    }

    #[test]
    fn sobol_finds_the_planted_segment() {
        let base = Image::filled(32, 32, 0.2);
        let seg = slic(&base, 16, 0.1, 3);
        let target = 3.min(seg.num_segments() - 1);
        let mut img = base.clone();
        for (x, y) in seg.pixels_of(target) {
            img.set(x, y, 1.0);
        }
        let pixels = seg.pixels_of(target);
        let f = move |im: &Image| {
            pixels.iter().map(|&(x, y)| im.get(x, y)).sum::<f32>() / pixels.len() as f32
        };
        let attr = sobol_total_indices(&img, &seg, f, 16, 0);
        assert_eq!(attr.top_k(1)[0], target, "{:?}", attr.scores());
    }

    #[test]
    fn constant_model_gives_zero_indices() {
        let img = Image::filled(32, 32, 0.5);
        let seg = slic(&img, 9, 0.1, 3);
        let attr = sobol_total_indices(&img, &seg, |_| 1.0, 8, 1);
        assert!(attr.scores().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let img = Image::filled(32, 32, 0.5);
        let seg = slic(&img, 9, 0.1, 3);
        let f = |im: &Image| im.mean();
        assert_eq!(
            sobol_total_indices(&img, &seg, f, 8, 5),
            sobol_total_indices(&img, &seg, f, 8, 5)
        );
    }

    #[test]
    fn additive_model_gives_proportional_indices() {
        // f = mean of segment 0 + 3 × mean of segment 1: segment 1's total
        // index should dominate segment 0's.
        let base = Image::filled(32, 32, 0.2);
        let seg = slic(&base, 4, 0.1, 2);
        if seg.num_segments() < 3 {
            return;
        }
        let mut img = base.clone();
        for s in [0usize, 1] {
            for (x, y) in seg.pixels_of(s) {
                img.set(x, y, 0.9);
            }
        }
        let p0 = seg.pixels_of(0);
        let p1 = seg.pixels_of(1);
        let f = move |im: &Image| {
            let m0 = p0.iter().map(|&(x, y)| im.get(x, y)).sum::<f32>() / p0.len() as f32;
            let m1 = p1.iter().map(|&(x, y)| im.get(x, y)).sum::<f32>() / p1.len() as f32;
            m0 + 3.0 * m1
        };
        let attr = sobol_total_indices(&img, &seg, f, 32, 2);
        assert!(
            attr.scores()[1] > attr.scores()[0] * 2.0,
            "{:?}",
            attr.scores()
        );
    }
}
