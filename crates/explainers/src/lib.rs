//! `explainers` — post-hoc explanation baselines over SLIC superpixels.
//!
//! The paper compares its self-explaining rationale against three
//! computationally expensive perturbation explainers (§IV-B(2), Table II,
//! Fig. 6).  All three are implemented from scratch against the same
//! interface: a black-box score function over the expressive frame `f_e`
//! and a 64-segment SLIC partition.
//!
//! * [`lime`] — Ribeiro et al. 2016: random binary masks, an
//!   exponential-kernel locality weight, and a weighted ridge surrogate
//!   whose coefficients are the attributions;
//! * [`shap`] — Lundberg & Lee 2017 (KernelSHAP): coalitions weighted by
//!   the Shapley kernel, solved as a weighted least squares;
//! * [`sobol`] — Fel et al. 2021: total-order Sobol' sensitivity indices
//!   estimated with the Jansen estimator over quasi-Monte-Carlo masks.
//!
//! Each explainer returns an [`Attribution`]: one importance score per
//! segment, whose `top_k` feeds the Table II disturb protocol.
//!
//! All three generate their mask matrices up front and evaluate the masked
//! frames through [`executor::MaskExecutor`] — the shared batch engine that
//! runs on the deterministic [`runtime`] worker pool and deduplicates
//! repeated coalitions via a mask-keyed cache (see [`executor::EvalCache`]).
//! The `*_in` variants ([`lime::lime_in`], [`shap::kernel_shap_in`],
//! [`sobol::sobol_total_indices_in`]) accept the executor explicitly so one
//! cache can serve all explainers on the same sample.

pub mod attribution;
pub mod executor;
pub mod lime;
pub mod linalg;
pub mod method;
pub mod qmc;
pub mod shap;
pub mod sobol;

pub use attribution::Attribution;
pub use executor::{EvalCache, Mask, MaskExecutor};
pub use lime::{lime, lime_in};
pub use method::{PerturbationMethod, ALL_METHODS};
pub use shap::{kernel_shap, kernel_shap_in};
pub use sobol::{sobol_total_indices, sobol_total_indices_in};
