//! Attribution scores and ranking.

/// One importance score per SLIC segment.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribution {
    scores: Vec<f32>,
}

impl Attribution {
    /// Wrap raw per-segment scores.
    pub fn new(scores: Vec<f32>) -> Self {
        assert!(!scores.is_empty(), "empty attribution");
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "non-finite attribution"
        );
        Attribution { scores }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether there are no scores (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Raw scores.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// Indices of the `k` highest-scoring segments, best first.  Ties break
    /// toward the lower index for determinism.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score() {
        let a = Attribution::new(vec![0.1, 0.9, 0.5, 0.9]);
        assert_eq!(a.top_k(3), vec![1, 3, 2]);
        assert_eq!(a.top_k(0), Vec::<usize>::new());
        assert_eq!(a.top_k(10).len(), 4, "k larger than len is clamped");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = Attribution::new(vec![f32::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let _ = Attribution::new(vec![]);
    }
}
