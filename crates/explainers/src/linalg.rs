//! Small dense linear-algebra helpers (weighted ridge regression).

/// Solve `A x = b` for a dense `n × n` system with Gaussian elimination and
/// partial pivoting.  Returns `None` when the matrix is numerically
/// singular.
pub fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[piv * n + col].abs() {
                piv = row;
            }
        }
        if a[piv * n + col].abs() < 1e-12 {
            return None;
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            b.swap(col, piv);
        }
        // Eliminate below.
        let d = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / d;
            if factor != 0.0 {
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                b[row] -= factor * b[col];
            }
        }
    }
    // Back-substitute.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col * n + k] * x[k];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

/// Weighted ridge regression with intercept:
/// minimise `Σ w_i (y_i − β₀ − x_iᵀβ)² + λ‖β‖²` over masks `x ∈ {0,1}^d`.
///
/// Returns `(β₀, β)`.  `xs` is row-major `n × d`.
pub fn weighted_ridge(
    xs: &[f32],
    ys: &[f32],
    ws: &[f32],
    d: usize,
    lambda: f64,
) -> (f64, Vec<f64>) {
    let n = ys.len();
    assert_eq!(xs.len(), n * d);
    assert_eq!(ws.len(), n);
    assert!(n > 0, "no samples");
    let m = d + 1; // intercept first.

    // Normal equations: (XᵀWX + λI') β = XᵀWy, intercept unpenalised.
    let mut a = vec![0.0f64; m * m];
    let mut b = vec![0.0f64; m];
    for i in 0..n {
        let w = ws[i] as f64;
        if w == 0.0 {
            continue;
        }
        let row = &xs[i * d..(i + 1) * d];
        let y = ys[i] as f64;
        // Augmented feature vector [1, x...].
        b[0] += w * y;
        a[0] += w;
        for j in 0..d {
            let xj = row[j] as f64;
            if xj != 0.0 {
                b[j + 1] += w * xj * y;
                a[j + 1] += w * xj; // A[0, j+1]
                a[(j + 1) * m] += w * xj; // A[j+1, 0]
                for k in j..d {
                    let xk = row[k] as f64;
                    if xk != 0.0 {
                        a[(j + 1) * m + k + 1] += w * xj * xk;
                        if k != j {
                            a[(k + 1) * m + j + 1] += w * xj * xk;
                        }
                    }
                }
            }
        }
    }
    for j in 1..m {
        a[j * m + j] += lambda;
    }
    // Tiny jitter on the intercept for singular degenerate inputs.
    a[0] += 1e-9;

    let beta = solve(a, b, m).unwrap_or_else(|| vec![0.0; m]);
    (beta[0], beta[1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -2.0];
        assert_eq!(solve(a, b, 2).unwrap(), vec![3.0, -2.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x - y = 1  → x = 2, y = 1.
        let a = vec![2.0, 1.0, 1.0, -1.0];
        let b = vec![5.0, 1.0];
        let x = solve(a, b, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let b = vec![1.0, 2.0];
        assert!(solve(a, b, 2).is_none());
    }

    #[test]
    fn ridge_recovers_linear_function() {
        // y = 2 x0 - 1 x1 + 0.5 over all 4 binary masks.
        let xs = vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let ys = vec![0.5, 2.5, -0.5, 1.5];
        let ws = vec![1.0; 4];
        let (b0, beta) = weighted_ridge(&xs, &ys, &ws, 2, 1e-6);
        assert!((b0 - 0.5).abs() < 1e-3, "intercept {b0}");
        assert!((beta[0] - 2.0).abs() < 1e-3, "{beta:?}");
        assert!((beta[1] + 1.0).abs() < 1e-3, "{beta:?}");
    }

    #[test]
    fn ridge_weights_ignore_zero_weight_rows() {
        // Two contradictory points; only the weighted one matters.
        let xs = vec![1.0, 1.0];
        let ys = vec![10.0, -10.0];
        let ws = vec![1.0, 0.0];
        let (b0, beta) = weighted_ridge(&xs, &ys, &ws, 1, 1e-6);
        assert!((b0 + beta[0] - 10.0).abs() < 1e-2);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let xs = vec![0.0, 1.0];
        let ys = vec![0.0, 1.0];
        let ws = vec![1.0, 1.0];
        let (_, small) = weighted_ridge(&xs, &ys, &ws, 1, 1e-6);
        let (_, big) = weighted_ridge(&xs, &ys, &ws, 1, 100.0);
        assert!(big[0].abs() < small[0].abs());
    }
}
