//! Quasi-Monte-Carlo sequence for the SOBOL explainer.
//!
//! Fel et al. generate their perturbation masks from a Sobol' sequence.  We
//! use the Halton sequence with prime bases — the same low-discrepancy role
//! with no external direction-number tables (see DESIGN.md for the
//! substitution note).  A per-dimension digital shift (Cranley–Patterson
//! rotation) decorrelates the high-dimensional projections.

/// First 64 primes (bases for up to 64 dimensions).
const PRIMES: [u32; 64] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311,
];

/// Radical inverse of `n` in base `b` — the Halton coordinate.
pub fn radical_inverse(mut n: u64, b: u32) -> f64 {
    let b = b as u64;
    let mut inv = 0.0f64;
    let mut denom = 1.0f64;
    while n > 0 {
        denom *= b as f64;
        inv += (n % b) as f64 / denom;
        n /= b;
    }
    inv
}

/// A `dims`-dimensional low-discrepancy point generator in `[0, 1)^dims`.
#[derive(Clone, Debug)]
pub struct QmcSequence {
    dims: usize,
    index: u64,
    shift: Vec<f64>,
}

impl QmcSequence {
    /// Create for up to 64 dimensions; `seed` sets the digital shift.
    pub fn new(dims: usize, seed: u64) -> Self {
        assert!(
            dims >= 1 && dims <= PRIMES.len(),
            "1..=64 dimensions supported"
        );
        // Deterministic per-dimension shift from a splitmix-style hash.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let shift = (0..dims)
            .map(|_| {
                state ^= state >> 30;
                state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                state ^= state >> 27;
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        QmcSequence {
            dims,
            index: 0,
            shift,
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Next point (skips index 0, which is degenerate for Halton).
    pub fn next_point(&mut self) -> Vec<f64> {
        self.index += 1;
        let n = self.index;
        (0..self.dims)
            .map(|d| {
                let x = radical_inverse(n, PRIMES[d]) + self.shift[d];
                x - x.floor()
            })
            .collect()
    }

    /// Generate an `n × dims` matrix of points.
    pub fn matrix(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radical_inverse_base2_known_values() {
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(4, 2), 0.125);
    }

    #[test]
    fn points_are_in_unit_cube() {
        let mut q = QmcSequence::new(64, 7);
        for _ in 0..200 {
            let p = q.next_point();
            assert_eq!(p.len(), 64);
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn low_discrepancy_beats_clumping_in_1d() {
        // The first-dimension marginal should cover [0,1) evenly: each of
        // 16 bins gets 256/16 = 16 ± small.
        let mut q = QmcSequence::new(2, 0);
        let mut bins = [0usize; 16];
        for _ in 0..256 {
            let p = q.next_point();
            bins[(p[0] * 16.0) as usize] += 1;
        }
        for &b in &bins {
            assert!((12..=20).contains(&b), "uneven bin: {bins:?}");
        }
    }

    #[test]
    fn different_seeds_shift_points() {
        let a = QmcSequence::new(4, 1).next_point();
        let b = QmcSequence::new(4, 2).next_point();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = QmcSequence::new(8, 5);
        let mut b = QmcSequence::new(8, 5);
        assert_eq!(a.matrix(10), b.matrix(10));
    }
}
