//! Name-keyed dispatch over the three perturbation explainers.
//!
//! Callers that pick an explainer at runtime — the serving API's
//! `/v1/explain` endpoint, the bench harness — share one evaluation-budget
//! convention: `budget` is the number of black-box evaluations the caller
//! is willing to pay.  LIME and KernelSHAP consume it directly as their
//! sample count; SOBOL converts it to QMC rows via the `n·(d+2)` design
//! cost of the Jansen estimator.

use videosynth::image::Image;
use videosynth::slic::Segmentation;

use crate::attribution::Attribution;
use crate::executor::MaskExecutor;
use crate::{kernel_shap_in, lime_in, sobol_total_indices_in};

/// One of the perturbation explainers, selectable by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerturbationMethod {
    /// Ribeiro et al. 2016 — weighted ridge surrogate.
    Lime,
    /// Lundberg & Lee 2017 — Shapley-kernel weighted least squares.
    KernelShap,
    /// Fel et al. 2021 — total-order Sobol' indices (Jansen estimator).
    Sobol,
}

/// All methods, in the paper's Table II order.
pub const ALL_METHODS: [PerturbationMethod; 3] = [
    PerturbationMethod::KernelShap,
    PerturbationMethod::Lime,
    PerturbationMethod::Sobol,
];

impl PerturbationMethod {
    /// Parse a method name as used in the serving API ("lime", "shap" /
    /// "kernelshap", "sobol"; case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "lime" => Some(PerturbationMethod::Lime),
            "shap" | "kernelshap" | "kernel_shap" => Some(PerturbationMethod::KernelShap),
            "sobol" => Some(PerturbationMethod::Sobol),
            _ => None,
        }
    }

    /// Canonical lower-case name (the inverse of [`parse`]).
    ///
    /// [`parse`]: PerturbationMethod::parse
    pub fn name(self) -> &'static str {
        match self {
            PerturbationMethod::Lime => "lime",
            PerturbationMethod::KernelShap => "shap",
            PerturbationMethod::Sobol => "sobol",
        }
    }

    /// SOBOL QMC rows affordable under `budget` evaluations at `d`
    /// segments (the design evaluates `n·(d+2)` masked frames).
    pub fn sobol_rows(budget: usize, d: usize) -> usize {
        (budget / (d + 2)).max(4)
    }

    /// Run the method through `exec` with an evaluation budget.
    pub fn run<F: Fn(&Image) -> f32 + Sync>(
        self,
        exec: &MaskExecutor,
        image: &Image,
        seg: &Segmentation,
        score: F,
        budget: usize,
        seed: u64,
    ) -> Attribution {
        match self {
            PerturbationMethod::Lime => lime_in(exec, image, seg, score, budget, seed),
            PerturbationMethod::KernelShap => kernel_shap_in(exec, image, seg, score, budget, seed),
            PerturbationMethod::Sobol => {
                let rows = Self::sobol_rows(budget, seg.num_segments());
                sobol_total_indices_in(exec, image, seg, score, rows, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::slic::slic;

    #[test]
    fn parse_roundtrip_and_aliases() {
        for m in ALL_METHODS {
            assert_eq!(PerturbationMethod::parse(m.name()), Some(m));
        }
        assert_eq!(
            PerturbationMethod::parse("KernelSHAP"),
            Some(PerturbationMethod::KernelShap)
        );
        assert_eq!(PerturbationMethod::parse("ours"), None);
    }

    #[test]
    fn sobol_row_budgeting() {
        // 1 000 evals at d = 64 affords the bench harness's 15 rows.
        assert_eq!(PerturbationMethod::sobol_rows(1000, 64), 15);
        // Tiny budgets still meet the estimator's minimum.
        assert_eq!(PerturbationMethod::sobol_rows(10, 64), 4);
    }

    #[test]
    fn run_dispatches_every_method() {
        let img = Image::filled(16, 16, 0.4);
        let seg = slic(&img, 4, 0.1, 2);
        let exec = MaskExecutor::new();
        for m in ALL_METHODS {
            let a = m.run(&exec, &img, &seg, |im: &Image| im.mean(), 64, 3);
            assert_eq!(a.len(), seg.num_segments(), "{m:?}");
        }
    }
}
