//! Shared mask-evaluation executor for the perturbation explainers.
//!
//! LIME, KernelSHAP and SOBOL all reduce to the same expensive inner loop:
//! perturb the expressive frame with a per-segment mask and query the
//! black-box score.  This module factors that loop out so that
//!
//! * masks are generated **up front** (so the explainer's RNG stream is
//!   consumed before any evaluation order can matter),
//! * the masked evaluations run through the [`runtime::Pool`]
//!   (order-preserving `par_map`, bit-identical across thread counts), and
//! * repeated coalitions are deduplicated through an optional shared
//!   [`EvalCache`] keyed on `(scope, mask)` — e.g. LIME's clean instance,
//!   SHAP's full-coalition anchor and SOBOL's `m = 1` rows all canonicalise
//!   to the same all-ones bitset key and cost one model call between them.

use std::collections::HashMap;

use runtime::{KeyedCache, Pool};
use videosynth::image::Image;
use videosynth::perturb::apply_mask;
use videosynth::slic::Segmentation;

/// A per-segment perturbation mask.
#[derive(Clone, Debug, PartialEq)]
pub enum Mask {
    /// Keep (`true`) or erase-to-fill (`false`) each segment.
    Binary(Vec<bool>),
    /// Blend each segment toward the fill value: `1.0` keeps the original,
    /// `0.0` erases the segment (the SOBOL perturbation operator).
    Soft(Vec<f64>),
}

/// Canonical hashable form of a [`Mask`].
///
/// Binary masks pack into a bitset; soft masks whose entries are all exactly
/// `0.0` or `1.0` canonicalise to the *same* bitset (the perturbation
/// operators agree there), so cross-explainer duplicates share cache slots.
/// Genuinely soft masks key on their `f64` bit patterns.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MaskKey {
    /// Packed binary coalition: segment count plus a little-endian bitset.
    Bits { len: usize, words: Vec<u64> },
    /// Raw IEEE-754 bit patterns of a soft mask.
    Soft(Vec<u64>),
}

fn pack_bits(keep: impl ExactSizeIterator<Item = bool>) -> MaskKey {
    let len = keep.len();
    let mut words = vec![0u64; len.div_ceil(64)];
    for (i, k) in keep.enumerate() {
        if k {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    MaskKey::Bits { len, words }
}

impl Mask {
    /// Number of segment entries.
    pub fn len(&self) -> usize {
        match self {
            Mask::Binary(k) => k.len(),
            Mask::Soft(m) => m.len(),
        }
    }

    /// True if the mask has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical cache key (see [`MaskKey`]).
    pub fn key(&self) -> MaskKey {
        match self {
            Mask::Binary(keep) => pack_bits(keep.iter().copied()),
            Mask::Soft(m) if m.iter().all(|&v| v == 0.0 || v == 1.0) => {
                pack_bits(m.iter().map(|&v| v == 1.0))
            }
            Mask::Soft(m) => MaskKey::Soft(m.iter().map(|v| v.to_bits()).collect()),
        }
    }

    /// Render the masked image.
    pub fn apply(&self, image: &Image, seg: &Segmentation, fill: f32) -> Image {
        match self {
            Mask::Binary(keep) => apply_mask(image, seg, keep, fill),
            Mask::Soft(m) => apply_soft_mask(image, seg, m, fill),
        }
    }
}

/// Blend each segment toward the fill value by its mask amount
/// (`m = 1` keeps the original, `m = 0` erases the segment) — the
/// real-valued perturbation operator of the SOBOL paper.
pub fn apply_soft_mask(image: &Image, seg: &Segmentation, mask: &[f64], fill: f32) -> Image {
    assert_eq!(mask.len(), seg.num_segments());
    let mut data = Vec::with_capacity(image.len());
    for y in 0..image.height() {
        for x in 0..image.width() {
            let m = mask[seg.segment_of(x, y)] as f32;
            let v = image.get(x, y);
            data.push(fill + m * (v - fill));
        }
    }
    Image::from_data(data, image.width(), image.height())
}

/// Shared black-box evaluation cache: `(scope, mask) → score`.
///
/// The scope distinguishes independent score functions sharing one cache —
/// the bench harness uses the sample's video id.  Soundness of the
/// first-insert-wins cache relies on scores being pure functions of the
/// scoped masked image.
pub type EvalCache = KeyedCache<(u64, MaskKey), f32>;

/// Runs batches of masked evaluations through the worker pool, deduplicating
/// repeated coalitions within the batch and (optionally) across explainers
/// via a shared [`EvalCache`].
pub struct MaskExecutor<'a> {
    pool: Pool,
    cache: Option<(&'a EvalCache, u64)>,
}

impl Default for MaskExecutor<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> MaskExecutor<'a> {
    /// Executor on the globally configured pool, no cross-call cache.
    pub fn new() -> Self {
        MaskExecutor {
            pool: Pool::global(),
            cache: None,
        }
    }

    /// Executor on an explicit pool (tests pin `Pool::new(1)`).
    pub fn with_pool(pool: Pool) -> Self {
        MaskExecutor { pool, cache: None }
    }

    /// Attach a shared cache; `scope` must uniquely identify the score
    /// function (e.g. the video id) so entries never collide across samples.
    pub fn with_cache(mut self, cache: &'a EvalCache, scope: u64) -> Self {
        self.cache = Some((cache, scope));
        self
    }

    /// Evaluate `score` on every masked image, in mask order.
    ///
    /// Duplicate masks (within the batch or already in the cache) are
    /// evaluated once.  The unique masked frames are rendered and scored in
    /// parallel through the pool; because every evaluation is a pure
    /// function of `(image, mask)`, the result vector is bit-identical for
    /// any thread count.
    pub fn evaluate<F>(
        &self,
        image: &Image,
        seg: &Segmentation,
        fill: f32,
        masks: &[Mask],
        score: &F,
    ) -> Vec<f32>
    where
        F: Fn(&Image) -> f32 + Sync,
    {
        // Map each mask to the slot of its first occurrence.
        let keys: Vec<MaskKey> = masks.iter().map(Mask::key).collect();
        let mut first_of: HashMap<&MaskKey, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let mut slot = Vec::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            let s = *first_of.entry(k).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
            slot.push(s);
        }

        // Resolve cache hits before spending pool time.
        let cached: Vec<Option<f32>> = match self.cache {
            Some((cache, scope)) => unique
                .iter()
                .map(|&i| cache.get(&(scope, keys[i].clone())))
                .collect(),
            None => vec![None; unique.len()],
        };

        let fresh: Vec<f32> = self.pool.par_map(&unique, |u, &i| match cached[u] {
            Some(v) => v,
            None => score(&masks[i].apply(image, seg, fill)),
        });

        if let Some((cache, scope)) = self.cache {
            for (u, &i) in unique.iter().enumerate() {
                if cached[u].is_none() {
                    cache.insert((scope, keys[i].clone()), fresh[u]);
                }
            }
        }

        slot.into_iter().map(|s| fresh[s]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::slic::slic;

    fn setup() -> (Image, Segmentation) {
        let img = Image::filled(16, 16, 0.4);
        let seg = slic(&img, 4, 0.1, 2);
        (img, seg)
    }

    #[test]
    fn binary_and_equivalent_soft_masks_share_a_key() {
        let bin = Mask::Binary(vec![true, false, true]);
        let soft = Mask::Soft(vec![1.0, 0.0, 1.0]);
        assert_eq!(bin.key(), soft.key());
        let truly_soft = Mask::Soft(vec![1.0, 0.5, 1.0]);
        assert_ne!(bin.key(), truly_soft.key());
    }

    #[test]
    fn keys_distinguish_masks_beyond_word_boundaries() {
        let mut a = vec![false; 70];
        let mut b = vec![false; 70];
        a[69] = true;
        b[68] = true;
        assert_ne!(Mask::Binary(a).key(), Mask::Binary(b.clone()).key());
        assert_ne!(Mask::Binary(b).key(), Mask::Binary(vec![false; 68]).key());
    }

    #[test]
    fn evaluate_preserves_order_and_dedups() {
        let (img, seg) = setup();
        let d = seg.num_segments();
        let fill = img.mean();
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let score = |im: &Image| {
            calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            im.mean()
        };
        let all = Mask::Binary(vec![true; d]);
        let none = Mask::Binary(vec![false; d]);
        let masks = vec![all.clone(), none.clone(), all.clone(), none, all];
        let exec = MaskExecutor::new();
        let ys = exec.evaluate(&img, &seg, fill, &masks, &score);
        assert_eq!(ys.len(), 5);
        assert_eq!(ys[0], ys[2]);
        assert_eq!(ys[0], ys[4]);
        assert_eq!(ys[1], ys[3]);
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn shared_cache_dedups_across_evaluate_calls() {
        let (img, seg) = setup();
        let d = seg.num_segments();
        let fill = img.mean();
        let cache = EvalCache::new();
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let score = |im: &Image| {
            calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            im.mean()
        };
        let masks = vec![Mask::Binary(vec![true; d]), Mask::Soft(vec![1.0; d])];
        let exec = MaskExecutor::new().with_cache(&cache, 7);
        let a = exec.evaluate(&img, &seg, fill, &masks, &score);
        let b = exec.evaluate(&img, &seg, fill, &masks, &score);
        assert_eq!(a, b);
        // Both masks canonicalise to the all-ones coalition: one real call.
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_scopes_are_disjoint() {
        let (img, seg) = setup();
        let d = seg.num_segments();
        let cache = EvalCache::new();
        let masks = vec![Mask::Binary(vec![false; d])];
        let a = MaskExecutor::new().with_cache(&cache, 1).evaluate(
            &img,
            &seg,
            0.1,
            &masks,
            &|im: &Image| im.mean(),
        );
        let b = MaskExecutor::new().with_cache(&cache, 2).evaluate(
            &img,
            &seg,
            0.9,
            &masks,
            &|im: &Image| im.mean(),
        );
        assert_ne!(a, b, "different scopes must not share entries");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn pinned_single_thread_pool_matches_global() {
        let (img, seg) = setup();
        let d = seg.num_segments();
        let fill = img.mean();
        let masks: Vec<Mask> = (0..d)
            .map(|i| {
                let mut keep = vec![true; d];
                keep[i] = false;
                Mask::Binary(keep)
            })
            .collect();
        let score = |im: &Image| im.mean();
        let seq = MaskExecutor::with_pool(Pool::new(1)).evaluate(&img, &seg, fill, &masks, &score);
        let par = MaskExecutor::with_pool(Pool::new(8)).evaluate(&img, &seg, fill, &masks, &score);
        assert_eq!(seq, par);
    }
}
