//! LIME (Ribeiro, Singh & Guestrin, KDD 2016) over SLIC superpixels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use videosynth::image::Image;
use videosynth::slic::Segmentation;

use crate::attribution::Attribution;
use crate::executor::{Mask, MaskExecutor};
use crate::linalg::weighted_ridge;

/// Explain `score` around `image`: sample `n_samples` random binary masks
/// over the segments, query the black-box on each masked image, weight the
/// samples by an exponential locality kernel, and fit a weighted ridge
/// surrogate.  The surrogate's coefficients are the attributions.
///
/// `score` receives the perturbed expressive frame and must return the
/// model's score for the class being explained.  Evaluations run through
/// the global worker pool; see [`lime_in`] to share an executor/cache.
pub fn lime<F: Fn(&Image) -> f32 + Sync>(
    image: &Image,
    seg: &Segmentation,
    score: F,
    n_samples: usize,
    seed: u64,
) -> Attribution {
    lime_in(&MaskExecutor::new(), image, seg, score, n_samples, seed)
}

/// [`lime`] with an explicit [`MaskExecutor`], so the bench harness can
/// share one mask-keyed evaluation cache across explainers on a sample.
///
/// All masks are drawn from the seeded RNG up front (same stream as the
/// former evaluate-as-you-sample loop), then scored as one batch; the
/// attributions are therefore bit-identical for any pool thread count.
pub fn lime_in<F: Fn(&Image) -> f32 + Sync>(
    exec: &MaskExecutor,
    image: &Image,
    seg: &Segmentation,
    score: F,
    n_samples: usize,
    seed: u64,
) -> Attribution {
    assert!(n_samples >= 8, "LIME needs a non-trivial sample budget");
    let d = seg.num_segments();
    let fill = image.mean();
    let mut rng = StdRng::seed_from_u64(seed);
    // Kernel width as in the reference implementation: 0.25·√d.
    let kernel_width = 0.25 * (d as f32).sqrt();

    // The unperturbed instance (an all-ones mask) with full weight, as lime
    // does, then the sampled coalitions.
    let mut masks = Vec::with_capacity(n_samples + 1);
    masks.push(Mask::Binary(vec![true; d]));
    for _ in 0..n_samples {
        masks.push(Mask::Binary(
            (0..d).map(|_| rng.random::<f32>() < 0.5).collect(),
        ));
    }

    let ys = exec.evaluate(image, seg, fill, &masks, &score);

    let mut xs = Vec::with_capacity(masks.len() * d);
    let mut ws = Vec::with_capacity(masks.len());
    for mask in &masks {
        let Mask::Binary(keep) = mask else {
            unreachable!()
        };
        let dropped = keep.iter().filter(|&&k| !k).count();
        xs.extend(keep.iter().map(|&k| if k { 1.0f32 } else { 0.0 }));
        // Cosine-style distance ≈ fraction dropped; exponential kernel
        // (the unperturbed instance lands on the kernel's peak weight 1).
        let dist = dropped as f32 / d as f32 * (d as f32).sqrt();
        ws.push((-dist * dist / (kernel_width * kernel_width)).exp());
    }

    let (_, beta) = weighted_ridge(&xs, &ys, &ws, d, 1.0);
    Attribution::new(beta.into_iter().map(|b| b as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::slic::slic;

    /// A synthetic black box that only looks at segment 3's mean intensity.
    fn planted_model(seg: &Segmentation, target: usize) -> impl Fn(&Image) -> f32 + Sync + '_ {
        let pixels = seg.pixels_of(target);
        move |img: &Image| {
            let s: f32 = pixels.iter().map(|&(x, y)| img.get(x, y)).sum();
            s / pixels.len() as f32
        }
    }

    fn bright_segment_image(seg: &Segmentation, target: usize) -> Image {
        let mut img = Image::filled(32, 32, 0.2);
        for (x, y) in seg.pixels_of(target) {
            img.set(x, y, 1.0);
        }
        img
    }

    #[test]
    fn lime_finds_the_planted_segment() {
        let base = Image::filled(32, 32, 0.2);
        let seg = slic(&base, 16, 0.1, 3);
        let target = 5.min(seg.num_segments() - 1);
        let img = bright_segment_image(&seg, target);
        let attr = lime(&img, &seg, planted_model(&seg, target), 256, 0);
        assert_eq!(attr.top_k(1)[0], target, "scores: {:?}", attr.scores());
    }

    #[test]
    fn lime_is_deterministic_in_seed() {
        let base = Image::filled(32, 32, 0.4);
        let seg = slic(&base, 9, 0.1, 3);
        let f = |img: &Image| img.mean();
        let a = lime(&base, &seg, f, 64, 3);
        let b = lime(&base, &seg, f, 64, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_model_gives_near_zero_attributions() {
        let base = Image::filled(32, 32, 0.5);
        let seg = slic(&base, 9, 0.1, 3);
        let attr = lime(&base, &seg, |_| 0.7, 128, 1);
        assert!(
            attr.scores().iter().all(|s| s.abs() < 1e-3),
            "{:?}",
            attr.scores()
        );
    }
}
