//! `evalkit` — evaluation protocol shared by every experiment.
//!
//! * [`metrics`] — confusion matrices and the macro-averaged Accuracy /
//!   Precision / Recall / F1 of §IV-C (with the paper's `Recall =
//!   TP/(TP+TN)` typo corrected to the standard definition);
//! * [`cv`] — stratified k-fold cross-validation driving and result
//!   aggregation (§IV-H runs 10-fold CV), with a thread-parallel fold
//!   runner;
//! * [`faithfulness`] — the Top-k disturb protocol of §IV-C / Table II:
//!   gaussian-noise the top-scoring SLIC segments named by an explainer and
//!   measure the accuracy drop;
//! * [`timing`] — wall-clock measurement for the Figure 6 latency
//!   comparison;
//! * [`table`] — fixed-width table formatting with paper-vs-measured rows
//!   for the bench binaries;
//! * [`chart`] — dependency-free SVG bar/line/histogram rendering so the
//!   figure binaries can emit actual plots.

pub mod chart;
pub mod cv;
pub mod faithfulness;
pub mod metrics;
pub mod table;
pub mod timing;

pub use cv::{kfold_mean, FoldResult};
pub use metrics::{Confusion, Metrics};
pub use table::Table;
