//! Wall-clock measurement for the Figure 6 latency comparison.

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Mean per-call seconds of `f` over `n` calls (n ≥ 1).
pub fn mean_seconds<F: FnMut()>(n: usize, mut f: F) -> f64 {
    assert!(n >= 1);
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / n as f64
}

/// Format seconds like the paper's Figure 6 axis ("3.4s", "216.3s").
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}ms", s * 1000.0)
    } else if s < 1.0 {
        format!("{:.0}ms", s * 1000.0)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result_and_nonnegative_time() {
        let (v, t) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn mean_seconds_counts_calls() {
        let mut calls = 0;
        let _ = mean_seconds(5, || calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_seconds(216.33), "216.3s");
        assert_eq!(fmt_seconds(3.42), "3.4s");
        assert_eq!(fmt_seconds(0.25), "250ms");
        assert_eq!(fmt_seconds(0.0004), "0.4ms");
    }
}
