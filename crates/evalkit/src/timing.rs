//! Wall-clock measurement for the Figure 6 latency comparison.

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Mean per-call seconds of `f` over `n` timed calls (n ≥ 1).
///
/// One untimed warm-up call runs first so cold-start effects (lazy
/// allocation, cache warming, pool spin-up) don't skew the mean — the
/// closure executes exactly `n + 1` times.
pub fn mean_seconds<F: FnMut()>(n: usize, mut f: F) -> f64 {
    assert!(n >= 1);
    f();
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / n as f64
}

/// Format seconds like the paper's Figure 6 axis ("3.4s", "216.3s").
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}ms", s * 1000.0)
    } else if s < 1.0 {
        format!("{:.0}ms", s * 1000.0)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result_and_nonnegative_time() {
        let (v, t) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn mean_seconds_counts_calls() {
        // n timed calls plus exactly one untimed warm-up.
        let mut calls = 0;
        let _ = mean_seconds(5, || calls += 1);
        assert_eq!(calls, 6);
    }

    #[test]
    fn warmup_call_is_excluded_from_the_mean() {
        // First call sleeps 30ms, the rest are ~instant: with the warm-up
        // excluded the mean must come out well under the sleep.
        let mut first = true;
        let mean = mean_seconds(10, || {
            if std::mem::take(&mut first) {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
        });
        assert!(mean < 0.015, "warm-up leaked into the mean: {mean}s");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_seconds(216.33), "216.3s");
        assert_eq!(fmt_seconds(3.42), "3.4s");
        assert_eq!(fmt_seconds(0.25), "250ms");
        assert_eq!(fmt_seconds(0.0004), "0.4ms");
    }
}
