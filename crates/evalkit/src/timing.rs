//! Wall-clock measurement for the Figure 6 latency comparison.

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Mean per-call seconds of `f` over `n` timed calls (n ≥ 1).
///
/// One untimed warm-up call runs first so cold-start effects (lazy
/// allocation, cache warming, pool spin-up) don't skew the mean — the
/// closure executes exactly `n + 1` times.
pub fn mean_seconds<F: FnMut()>(n: usize, mut f: F) -> f64 {
    assert!(n >= 1);
    f();
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() / n as f64
}

/// Empirical quantiles of `samples` at the given fractions (`0.5` = p50,
/// `0.99` = p99), with linear interpolation between order statistics.
///
/// Sorts `samples` in place (hence `&mut`); returns one value per entry of
/// `qs`, in `qs` order.  Panics on an empty sample set, a non-finite
/// sample, or a fraction outside `[0, 1]`.
pub fn percentiles(samples: &mut [f64], qs: &[f64]) -> Vec<f64> {
    assert!(!samples.is_empty(), "percentiles of an empty sample set");
    assert!(
        samples.iter().all(|s| s.is_finite()),
        "non-finite latency sample"
    );
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    qs.iter()
        .map(|&q| {
            assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
            let rank = q * (samples.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            samples[lo] + (samples[hi] - samples[lo]) * frac
        })
        .collect()
}

/// The `(p50, p95, p99)` triple every latency report in this repo uses.
pub fn p50_p95_p99(samples: &mut [f64]) -> [f64; 3] {
    let v = percentiles(samples, &[0.50, 0.95, 0.99]);
    [v[0], v[1], v[2]]
}

/// Format seconds like the paper's Figure 6 axis ("3.4s", "216.3s").
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}ms", s * 1000.0)
    } else if s < 1.0 {
        format!("{:.0}ms", s * 1000.0)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result_and_nonnegative_time() {
        let (v, t) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn mean_seconds_counts_calls() {
        // n timed calls plus exactly one untimed warm-up.
        let mut calls = 0;
        let _ = mean_seconds(5, || calls += 1);
        assert_eq!(calls, 6);
    }

    #[test]
    fn warmup_call_is_excluded_from_the_mean() {
        // First call sleeps 30ms, the rest are ~instant: with the warm-up
        // excluded the mean must come out well under the sleep.
        let mut first = true;
        let mean = mean_seconds(10, || {
            if std::mem::take(&mut first) {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
        });
        assert!(mean < 0.015, "warm-up leaked into the mean: {mean}s");
    }

    #[test]
    fn percentiles_interpolate_order_statistics() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        let p = percentiles(&mut v, &[0.0, 0.5, 1.0, 0.25]);
        assert_eq!(p, vec![1.0, 3.0, 5.0, 2.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 5.0], "sorted in place");
        // Interpolation between ranks: p75 of 1..=5 is 4.0, p90 is 4.6.
        let p = percentiles(&mut v, &[0.75, 0.9]);
        assert!((p[0] - 4.0).abs() < 1e-12);
        assert!((p[1] - 4.6).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_a_single_sample() {
        let mut v = vec![7.5];
        assert_eq!(p50_p95_p99(&mut v), [7.5, 7.5, 7.5]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentiles_reject_empty() {
        let _ = percentiles(&mut [], &[0.5]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentiles_reject_bad_quantile() {
        let _ = percentiles(&mut [1.0], &[1.5]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_seconds(216.33), "216.3s");
        assert_eq!(fmt_seconds(3.42), "3.4s");
        assert_eq!(fmt_seconds(0.25), "250ms");
        assert_eq!(fmt_seconds(0.0004), "0.4ms");
    }
}
