//! The Top-k disturb faithfulness protocol (§IV-C, §IV-H, Table II).
//!
//! For every test sample each explanation method nominates its top-scoring
//! SLIC segments; gaussian noise is placed on the Top-1 / Top-2 / Top-3 of
//! them; the *accuracy drop* of the classifier on the disturbed inputs
//! measures how well the explanation located the evidence the model uses.

use videosynth::image::Image;
use videosynth::perturb::gaussian_disturb;
use videosynth::slic::{slic, Segmentation};
use videosynth::video::{StressLabel, VideoSample};

use crate::metrics::Confusion;

/// SLIC parameters fixed by §IV-H: 64 segments on the expressive frame.
pub const NUM_SEGMENTS: usize = 64;
/// Compactness used everywhere.
pub const SLIC_COMPACTNESS: f32 = 0.1;
/// SLIC iterations.
pub const SLIC_ITERS: usize = 5;
/// Noise σ placed on disturbed segments.
pub const DISTURB_SIGMA: f32 = 0.35;

/// Segment the expressive frame of a sample as the protocol prescribes.
pub fn segment_expressive_frame(video: &VideoSample) -> (Image, Segmentation) {
    let fe = video.render_frame(video.most_expressive_frame());
    let seg = slic(&fe, NUM_SEGMENTS, SLIC_COMPACTNESS, SLIC_ITERS);
    (fe, seg)
}

/// Accuracy drops after disturbing the Top-1, Top-2 and Top-3 segments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TopKDrops {
    /// Clean accuracy.
    pub clean: f64,
    /// Accuracy drop (clean − disturbed) for k = 1, 2, 3.
    pub drops: [f64; 3],
}

/// Per-sample hooks the protocol needs from a method under test.
pub trait ExplainedClassifier {
    /// Predict from (possibly disturbed) expressive/least-expressive frames.
    fn predict_images(&self, fe: &Image, fl: &Image, video: &VideoSample) -> StressLabel;

    /// Rank segments by importance for this sample, best first (at least 3).
    fn rank_segments(&self, video: &VideoSample, fe: &Image, seg: &Segmentation) -> Vec<usize>;
}

/// Run the protocol over a test set: for each `k ∈ {1,2,3}` disturb that
/// many top segments and measure the accuracy drop.
///
/// Samples are evaluated in parallel through the globally configured
/// [`runtime::Pool`]; each sample's disturb noise is seeded purely from
/// `(seed, sample index, k)` and the confusion counts are reduced
/// sequentially afterwards, so results are bit-identical for any thread
/// count.
pub fn topk_accuracy_drops<C: ExplainedClassifier + Sync>(
    classifier: &C,
    test: &[VideoSample],
    seed: u64,
) -> TopKDrops {
    assert!(!test.is_empty(), "empty test set");

    // Per-sample records: (label, clean prediction, disturbed predictions).
    let records = runtime::Pool::global().par_map(test, |i, v| {
        let (fe, seg) = segment_expressive_frame(v);
        let fl = v.render_frame(v.least_expressive_frame());

        let clean_pred = classifier.predict_images(&fe, &fl, v);

        let ranking = classifier.rank_segments(v, &fe, &seg);
        assert!(ranking.len() >= 3, "need at least 3 ranked segments");
        let disturbed_preds: Vec<StressLabel> = (1..=3usize)
            .map(|k| {
                let top: Vec<usize> = ranking.iter().copied().take(k).collect();
                let noisy = gaussian_disturb(
                    &fe,
                    &seg,
                    &top,
                    DISTURB_SIGMA,
                    seed ^ ((i as u64) << 3) ^ k as u64,
                );
                classifier.predict_images(&noisy, &fl, v)
            })
            .collect();
        (v.label, clean_pred, disturbed_preds)
    });

    let mut clean = Confusion::default();
    let mut disturbed = [Confusion::default(); 3];
    for (label, clean_pred, disturbed_preds) in records {
        clean.record(label, clean_pred);
        for (k, pred) in disturbed_preds.into_iter().enumerate() {
            disturbed[k].record(label, pred);
        }
    }

    let clean_acc = clean.metrics().accuracy;
    let mut drops = [0.0f64; 3];
    for k in 0..3 {
        drops[k] = clean_acc - disturbed[k].metrics().accuracy;
    }
    TopKDrops {
        clean: clean_acc,
        drops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{Dataset, DatasetProfile, Scale};

    /// Edge density (horizontal gradients above 0.15) inside the brow rect —
    /// a texture-sensitive score that gaussian disturb genuinely changes.
    fn brow_edge_density(img: &Image) -> f32 {
        let rect = facs::region::FacialRegion::Eyebrow.rect();
        let mut edges = 0usize;
        let mut n = 0usize;
        for (x, y) in rect.pixels() {
            if x + 1 < rect.x1 {
                n += 1;
                if (img.get(x, y) - img.get(x + 1, y)).abs() > 0.15 {
                    edges += 1;
                }
            }
        }
        edges as f32 / n.max(1) as f32
    }

    /// A classifier that reads brow texture density and "explains" itself
    /// perfectly (brow-overlapping segments ranked first).
    struct BrowReader {
        threshold: f32,
    }

    impl BrowReader {
        /// Threshold at the median density of the given samples.
        fn calibrated(test: &[VideoSample]) -> Self {
            let mut ds: Vec<f32> = test
                .iter()
                .map(|v| brow_edge_density(&v.render_frame(v.most_expressive_frame())))
                .collect();
            ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
            BrowReader {
                threshold: ds[ds.len() / 2],
            }
        }
    }

    impl ExplainedClassifier for BrowReader {
        fn predict_images(&self, fe: &Image, _fl: &Image, _v: &VideoSample) -> StressLabel {
            if brow_edge_density(fe) > self.threshold {
                StressLabel::Stressed
            } else {
                StressLabel::Unstressed
            }
        }

        fn rank_segments(&self, _v: &VideoSample, _fe: &Image, seg: &Segmentation) -> Vec<usize> {
            // Rank segments by overlap with the brow rect.
            let rect = facs::region::FacialRegion::Eyebrow.rect();
            let mut overlap = vec![0usize; seg.num_segments()];
            for (x, y) in rect.pixels() {
                overlap[seg.segment_of(x, y)] += 1;
            }
            let mut idx: Vec<usize> = (0..seg.num_segments()).collect();
            idx.sort_by_key(|&s| std::cmp::Reverse(overlap[s]));
            idx
        }
    }

    /// Same classifier, but explanations point at random far-away segments.
    struct BrowReaderBadExplanation {
        inner: BrowReader,
    }

    impl ExplainedClassifier for BrowReaderBadExplanation {
        fn predict_images(&self, fe: &Image, fl: &Image, v: &VideoSample) -> StressLabel {
            self.inner.predict_images(fe, fl, v)
        }

        fn rank_segments(&self, v: &VideoSample, fe: &Image, seg: &Segmentation) -> Vec<usize> {
            let mut good = self.inner.rank_segments(v, fe, seg);
            good.reverse(); // worst-overlap first
            good
        }
    }

    #[test]
    fn faithful_explanations_cause_bigger_drops() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 3);
        let test: Vec<VideoSample> = ds.samples.into_iter().take(30).collect();
        let reader = BrowReader::calibrated(&test);
        let bad_reader = BrowReaderBadExplanation {
            inner: BrowReader::calibrated(&test),
        };
        let good = topk_accuracy_drops(&reader, &test, 1);
        let bad = topk_accuracy_drops(&bad_reader, &test, 1);
        assert_eq!(
            good.clean, bad.clean,
            "same classifier, same clean accuracy"
        );
        assert!(
            good.drops[2] > bad.drops[2],
            "good {:?} should beat bad {:?}",
            good.drops,
            bad.drops
        );
    }

    #[test]
    fn drops_are_bounded_by_clean_accuracy() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 4);
        let test: Vec<VideoSample> = ds.samples.into_iter().take(10).collect();
        let r = topk_accuracy_drops(&BrowReader::calibrated(&test), &test, 2);
        for d in r.drops {
            assert!(d <= r.clean + 1e-9);
            assert!(d >= -1.0);
        }
    }

    #[test]
    fn segmentation_has_the_required_segments() {
        let ds = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 5);
        let (_, seg) = segment_expressive_frame(&ds.samples[0]);
        assert!(seg.num_segments() >= 32, "got {}", seg.num_segments());
        assert!(seg.num_segments() <= NUM_SEGMENTS);
    }
}
