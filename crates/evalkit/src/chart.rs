//! Minimal SVG chart rendering for the figure binaries.
//!
//! The paper's Figures 6–8 are a bar chart, paired histograms and a line
//! chart.  This module renders equivalent SVGs with no dependencies so the
//! figure binaries can emit an actual plot next to their text table.

use std::fmt::Write as _;

/// Chart canvas size.
const W: f64 = 640.0;
const H: f64 = 400.0;
/// Plot margins: left, right, top, bottom.
const MARGIN: (f64, f64, f64, f64) = (70.0, 20.0, 40.0, 60.0);

/// A categorical bar chart (Figure 6 style).  Values may span decades; set
/// `log_scale` for a log₁₀ y-axis.
pub fn bar_chart(title: &str, y_label: &str, bars: &[(String, f64)], log_scale: bool) -> String {
    assert!(!bars.is_empty(), "no bars");
    assert!(
        bars.iter()
            .all(|b| b.1.is_finite() && (!log_scale || b.1 > 0.0)),
        "bar values must be finite (and positive on a log scale)"
    );
    let (ml, mr, mt, mb) = MARGIN;
    let (pw, ph) = (W - ml - mr, H - mt - mb);
    let transform = |v: f64| if log_scale { v.log10() } else { v };
    let vmax = bars.iter().map(|b| transform(b.1)).fold(f64::MIN, f64::max);
    let vmin = if log_scale {
        bars.iter()
            .map(|b| transform(b.1))
            .fold(f64::MAX, f64::min)
            .min(0.0)
    } else {
        0.0
    };
    let span = (vmax - vmin).max(1e-9);

    let mut s = svg_header(title);
    axis_lines(&mut s);
    let _ = write!(
        s,
        r#"<text x="18" y="{:.0}" transform="rotate(-90 18 {:.0})" text-anchor="middle" font-size="13">{}</text>"#,
        mt + ph / 2.0,
        mt + ph / 2.0,
        escape(y_label)
    );

    let bw = pw / bars.len() as f64 * 0.6;
    for (i, (label, v)) in bars.iter().enumerate() {
        let cx = ml + pw * (i as f64 + 0.5) / bars.len() as f64;
        let frac = (transform(*v) - vmin) / span;
        let bh = ph * frac.clamp(0.0, 1.0);
        let _ = write!(
            s,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#4878a8"/>"##,
            cx - bw / 2.0,
            mt + ph - bh,
            bw,
            bh
        );
        let _ = write!(
            s,
            r#"<text x="{cx:.1}" y="{:.1}" text-anchor="middle" font-size="12">{}</text>"#,
            H - mb + 18.0,
            escape(label)
        );
        let _ = write!(
            s,
            r#"<text x="{cx:.1}" y="{:.1}" text-anchor="middle" font-size="11">{v:.2}</text>"#,
            mt + ph - bh - 6.0
        );
    }
    s.push_str("</svg>\n");
    s
}

/// A multi-series line chart (Figure 8 style): shared x values, one named
/// series of equal length per entry.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    xs: &[f64],
    series: &[(String, Vec<f64>)],
) -> String {
    assert!(xs.len() >= 2, "need at least two x points");
    assert!(!series.is_empty());
    assert!(
        series.iter().all(|s| s.1.len() == xs.len()),
        "ragged series"
    );
    let (ml, mr, mt, mb) = MARGIN;
    let (pw, ph) = (W - ml - mr, H - mt - mb);
    let ys: Vec<f64> = series.iter().flat_map(|s| s.1.iter().copied()).collect();
    let ymin = ys.iter().copied().fold(f64::MAX, f64::min);
    let ymax = ys.iter().copied().fold(f64::MIN, f64::max);
    let yspan = (ymax - ymin).max(1e-9);
    let xmin = xs[0];
    let xspan = (xs[xs.len() - 1] - xmin).max(1e-9);
    const COLORS: [&str; 4] = ["#4878a8", "#c8604a", "#5a9a5a", "#8a6ab0"];

    let mut s = svg_header(title);
    axis_lines(&mut s);
    let _ = write!(
        s,
        r#"<text x="{:.0}" y="{:.0}" text-anchor="middle" font-size="13">{}</text>"#,
        ml + pw / 2.0,
        H - 14.0,
        escape(x_label)
    );
    let _ = write!(
        s,
        r#"<text x="18" y="{:.0}" transform="rotate(-90 18 {:.0})" text-anchor="middle" font-size="13">{}</text>"#,
        mt + ph / 2.0,
        mt + ph / 2.0,
        escape(y_label)
    );

    for (si, (name, ys)) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let pts: Vec<String> = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                format!(
                    "{:.1},{:.1}",
                    ml + pw * (x - xmin) / xspan,
                    mt + ph * (1.0 - (y - ymin) / yspan)
                )
            })
            .collect();
        let _ = write!(
            s,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        );
        // Legend entry.
        let ly = mt + 16.0 + si as f64 * 18.0;
        let _ = write!(
            s,
            r#"<rect x="{:.0}" y="{:.0}" width="12" height="12" fill="{color}"/><text x="{:.0}" y="{:.0}" font-size="12">{}</text>"#,
            ml + 10.0,
            ly - 10.0,
            ml + 28.0,
            ly,
            escape(name)
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Two overlaid histograms (Figure 7 style: helpful vs unhelpful
/// similarities).
pub fn paired_histogram(
    title: &str,
    x_label: &str,
    a: (&str, &[f32]),
    b: (&str, &[f32]),
    bins: usize,
) -> String {
    assert!(bins >= 2);
    assert!(!a.1.is_empty() || !b.1.is_empty(), "both populations empty");
    let all: Vec<f32> = a.1.iter().chain(b.1).copied().collect();
    let lo = all.iter().copied().fold(f32::MAX, f32::min);
    let hi = all.iter().copied().fold(f32::MIN, f32::max);
    let span = (hi - lo).max(1e-6);
    let count = |vals: &[f32]| -> Vec<usize> {
        let mut h = vec![0usize; bins];
        for &v in vals {
            let i = (((v - lo) / span) * bins as f32) as usize;
            h[i.min(bins - 1)] += 1;
        }
        h
    };
    let (ha, hb) = (count(a.1), count(b.1));
    let max_count = ha.iter().chain(&hb).copied().max().unwrap_or(1).max(1);

    let (ml, mr, mt, mb) = MARGIN;
    let (pw, ph) = (W - ml - mr, H - mt - mb);
    let mut s = svg_header(title);
    axis_lines(&mut s);
    let _ = write!(
        s,
        r#"<text x="{:.0}" y="{:.0}" text-anchor="middle" font-size="13">{}</text>"#,
        ml + pw / 2.0,
        H - 14.0,
        escape(x_label)
    );
    for (hist, color, name, offset) in [(&ha, "#4878a8", a.0, 0.0), (&hb, "#c8604a", b.0, 0.45)] {
        let bw = pw / bins as f64 * 0.45;
        for (i, &c) in hist.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let x = ml + pw * i as f64 / bins as f64 + bw * offset * 2.0;
            let bh = ph * c as f64 / max_count as f64;
            let _ = write!(
                s,
                r#"<rect x="{x:.1}" y="{:.1}" width="{bw:.1}" height="{bh:.1}" fill="{color}" fill-opacity="0.75"/>"#,
                mt + ph - bh
            );
        }
        let ly = mt + 16.0 + offset * 40.0;
        let _ = write!(
            s,
            r#"<rect x="{:.0}" y="{:.0}" width="12" height="12" fill="{color}"/><text x="{:.0}" y="{:.0}" font-size="12">{}</text>"#,
            ml + 10.0,
            ly - 10.0,
            ml + 28.0,
            ly,
            escape(name)
        );
    }
    s.push_str("</svg>\n");
    s
}

fn svg_header(title: &str) -> String {
    let mut s = String::with_capacity(4096);
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
    );
    s.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = write!(
        s,
        r#"<text x="{:.0}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        W / 2.0,
        escape(title)
    );
    s
}

fn axis_lines(s: &mut String) {
    let (ml, mr, mt, mb) = MARGIN;
    let _ = write!(
        s,
        r#"<line x1="{ml}" y1="{0}" x2="{1}" y2="{0}" stroke="black"/><line x1="{ml}" y1="{mt}" x2="{ml}" y2="{0}" stroke="black"/>"#,
        H - mb,
        W - mr
    );
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_is_valid_svg_with_all_bars() {
        let svg = bar_chart(
            "latency",
            "seconds",
            &[("Ours".into(), 0.4), ("SOBOL".into(), 3.1)],
            false,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 2, "background + 2 bars");
        assert!(svg.contains("Ours"));
        assert!(svg.contains("SOBOL"));
    }

    #[test]
    fn log_scale_requires_positive_values() {
        let r = std::panic::catch_unwind(|| bar_chart("x", "y", &[("a".into(), 0.0)], true));
        assert!(r.is_err());
    }

    #[test]
    fn line_chart_has_one_polyline_per_series() {
        let svg = line_chart(
            "fig8",
            "pool",
            "acc",
            &[0.2, 0.6, 1.0],
            &[
                ("Random".into(), vec![0.8, 0.8, 0.8]),
                ("ByDesc".into(), vec![0.82, 0.88, 0.9]),
            ],
        );
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Random"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn line_chart_rejects_ragged_series() {
        let _ = line_chart("t", "x", "y", &[0.0, 1.0], &[("a".into(), vec![1.0])]);
    }

    #[test]
    fn histogram_handles_identical_values() {
        let svg = paired_histogram("fig7", "sim", ("h", &[0.5, 0.5]), ("u", &[0.5]), 8);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn escape_handles_markup() {
        assert_eq!(escape("a<b&c"), "a&lt;b&amp;c");
    }
}
