//! Classification metrics (§IV-C), macro-averaged over the two classes.

use videosynth::video::StressLabel;

/// Binary confusion counts with *Stressed* as the positive class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Stressed predicted stressed.
    pub tp: usize,
    /// Unstressed predicted unstressed.
    pub tn: usize,
    /// Unstressed predicted stressed.
    pub fp: usize,
    /// Stressed predicted unstressed.
    pub fn_: usize,
}

impl Confusion {
    /// Tally one prediction.
    pub fn record(&mut self, truth: StressLabel, predicted: StressLabel) {
        match (truth, predicted) {
            (StressLabel::Stressed, StressLabel::Stressed) => self.tp += 1,
            (StressLabel::Unstressed, StressLabel::Unstressed) => self.tn += 1,
            (StressLabel::Unstressed, StressLabel::Stressed) => self.fp += 1,
            (StressLabel::Stressed, StressLabel::Unstressed) => self.fn_ += 1,
        }
    }

    /// Build from parallel truth/prediction slices.
    pub fn from_pairs(pairs: &[(StressLabel, StressLabel)]) -> Self {
        let mut c = Confusion::default();
        for &(t, p) in pairs {
            c.record(t, p);
        }
        c
    }

    /// Total predictions tallied.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Macro-averaged metrics.
    pub fn metrics(&self) -> Metrics {
        let total = self.total();
        assert!(total > 0, "no predictions recorded");
        let accuracy = (self.tp + self.tn) as f64 / total as f64;

        // Per-class precision/recall; macro-average assigns equal weight to
        // each class (§IV-C).
        let prec_pos = safe_div(self.tp, self.tp + self.fp);
        let rec_pos = safe_div(self.tp, self.tp + self.fn_);
        let prec_neg = safe_div(self.tn, self.tn + self.fn_);
        let rec_neg = safe_div(self.tn, self.tn + self.fp);

        let f1_pos = f1(prec_pos, rec_pos);
        let f1_neg = f1(prec_neg, rec_neg);

        Metrics {
            accuracy,
            precision: (prec_pos + prec_neg) / 2.0,
            recall: (rec_pos + rec_neg) / 2.0,
            f1: (f1_pos + f1_neg) / 2.0,
        }
    }
}

fn safe_div(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn f1(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Macro-averaged Accuracy / Precision / Recall / F1, all in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    pub accuracy: f64,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Metrics {
    /// Element-wise mean of several folds' metrics.
    pub fn mean(items: &[Metrics]) -> Metrics {
        assert!(!items.is_empty(), "mean of no metrics");
        let n = items.len() as f64;
        Metrics {
            accuracy: items.iter().map(|m| m.accuracy).sum::<f64>() / n,
            precision: items.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: items.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: items.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }

    /// `"95.81% 96.05% 92.82% 94.22%"`-style row cells.
    pub fn row_cells(&self) -> [String; 4] {
        [
            format!("{:.2}%", self.accuracy * 100.0),
            format!("{:.2}%", self.precision * 100.0),
            format!("{:.2}%", self.recall * 100.0),
            format!("{:.2}%", self.f1 * 100.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use StressLabel::{Stressed as S, Unstressed as U};

    #[test]
    fn perfect_predictions() {
        let c = Confusion::from_pairs(&[(S, S), (U, U), (S, S), (U, U)]);
        let m = c.metrics();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn all_wrong_predictions() {
        let c = Confusion::from_pairs(&[(S, U), (U, S)]);
        let m = c.metrics();
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn accuracy_identity_from_confusion() {
        let c = Confusion {
            tp: 7,
            tn: 5,
            fp: 2,
            fn_: 1,
        };
        let m = c.metrics();
        assert!((m.accuracy - 12.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn macro_average_weights_classes_equally() {
        // Heavily imbalanced, classifier always predicts the majority class.
        let mut pairs = vec![(U, U); 90];
        pairs.extend(vec![(S, U); 10]);
        let m = Confusion::from_pairs(&pairs).metrics();
        assert!((m.accuracy - 0.9).abs() < 1e-12);
        // Macro recall = (0 + 1)/2.
        assert!((m.recall - 0.5).abs() < 1e-12);
        // Macro precision = (0 + 0.9)/2.
        assert!((m.precision - 0.45).abs() < 1e-12);
    }

    #[test]
    fn record_matches_from_pairs() {
        let mut a = Confusion::default();
        a.record(S, S);
        a.record(U, S);
        let b = Confusion::from_pairs(&[(S, S), (U, S)]);
        assert_eq!(a, b);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn mean_of_metrics() {
        let a = Metrics {
            accuracy: 1.0,
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
        };
        let b = Metrics {
            accuracy: 0.5,
            precision: 0.5,
            recall: 0.5,
            f1: 0.5,
        };
        let m = Metrics::mean(&[a, b]);
        assert!((m.accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn row_cells_format() {
        let m = Metrics {
            accuracy: 0.9581,
            precision: 0.9605,
            recall: 0.9282,
            f1: 0.9422,
        };
        assert_eq!(m.row_cells()[0], "95.81%");
        assert_eq!(m.row_cells()[3], "94.22%");
    }

    #[test]
    #[should_panic(expected = "no predictions")]
    fn empty_confusion_panics() {
        let _ = Confusion::default().metrics();
    }
}
