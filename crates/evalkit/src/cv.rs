//! Cross-validation driving (§IV-H: 10-fold CV, averaged scores).

use runtime::Pool;
use videosynth::dataset::Dataset;

use crate::metrics::Metrics;

/// Metrics of one fold.
#[derive(Clone, Debug)]
pub struct FoldResult {
    /// Fold index in `0..k`.
    pub fold: usize,
    /// Macro metrics on that fold's test split.
    pub metrics: Metrics,
}

/// Run `eval_fold(train_indices, test_indices, fold)` over a stratified
/// k-fold split and average the metrics.
///
/// With `parallel = true` the folds are submitted to the globally
/// configured [`runtime::Pool`] (bounded at `--threads` workers, instead of
/// the former one-OS-thread-per-fold spawning); `parallel = false` pins a
/// single-worker pool.  Results are order-preserved and bit-identical
/// between the two because each fold's evaluation is a pure function of its
/// `(train, test, fold)` triple.
pub fn kfold_mean<F>(
    ds: &Dataset,
    k: usize,
    seed: u64,
    parallel: bool,
    eval_fold: F,
) -> (Metrics, Vec<FoldResult>)
where
    F: Fn(&[usize], &[usize], usize) -> Metrics + Sync,
{
    let folds = ds.k_folds(k, seed);
    let pool = if parallel {
        Pool::global()
    } else {
        Pool::new(1)
    };
    let results: Vec<FoldResult> = pool.par_map(&folds, |i, (train, test)| FoldResult {
        fold: i,
        metrics: eval_fold(train, test, i),
    });
    let mean = Metrics::mean(&results.iter().map(|r| r.metrics).collect::<Vec<_>>());
    (mean, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use videosynth::dataset::{DatasetProfile, Scale};
    use videosynth::video::StressLabel;

    fn ds() -> Dataset {
        Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), 1)
    }

    /// A "classifier" that predicts the majority label of its training set.
    fn majority_eval(ds: &Dataset) -> impl Fn(&[usize], &[usize], usize) -> Metrics + Sync + '_ {
        move |train, test, _| {
            let stressed = train
                .iter()
                .filter(|&&i| ds.samples[i].label == StressLabel::Stressed)
                .count();
            let majority = if stressed * 2 > train.len() {
                StressLabel::Stressed
            } else {
                StressLabel::Unstressed
            };
            let pairs: Vec<_> = test
                .iter()
                .map(|&i| (ds.samples[i].label, majority))
                .collect();
            crate::metrics::Confusion::from_pairs(&pairs).metrics()
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let d = ds();
        let (seq, seq_folds) = kfold_mean(&d, 4, 9, false, majority_eval(&d));
        let (par, par_folds) = kfold_mean(&d, 4, 9, true, majority_eval(&d));
        assert_eq!(seq_folds.len(), 4);
        assert_eq!(par_folds.len(), 4);
        assert!((seq.accuracy - par.accuracy).abs() < 1e-12);
    }

    #[test]
    fn majority_classifier_accuracy_matches_class_ratio() {
        let d = ds();
        let (mean, _) = kfold_mean(&d, 4, 3, false, majority_eval(&d));
        let (s, u) = d.label_counts();
        let expected = u as f64 / (s + u) as f64;
        assert!(
            (mean.accuracy - expected).abs() < 0.1,
            "{} vs {}",
            mean.accuracy,
            expected
        );
    }

    #[test]
    fn fold_indices_are_passed_in_order() {
        let d = ds();
        let (_, folds) = kfold_mean(&d, 3, 0, false, majority_eval(&d));
        let ids: Vec<usize> = folds.iter().map(|f| f.fold).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
