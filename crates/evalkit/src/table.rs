//! Fixed-width table rendering with paper-vs-measured rows.
//!
//! Every bench binary regenerates one of the paper's tables/figures and
//! prints the measured values next to the paper's reported numbers so the
//! *shape* comparison (who wins, by roughly what factor) is immediate.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        assert!(!header.is_empty(), "a table needs columns");
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cell count must match the header).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a separator-style row of empty cells labelled in column 0.
    pub fn section(&mut self, label: &str) -> &mut Self {
        let mut cells = vec![String::new(); self.header.len()];
        cells[0] = format!("— {label} —");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols + 1;
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(total.min(120)));
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "| {:width$} ", h, width = widths[i]);
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "| {:width$} ", c, width = widths[i]);
            }
            line.push('|');
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a `measured` percentage next to the paper's reported value:
/// `"93.45% (paper 95.81%)"`.
pub fn vs_paper(measured: f64, paper_pct: f64) -> String {
    format!("{:.2}% (paper {:.2}%)", measured * 100.0, paper_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Method", "Acc."]);
        t.row(vec!["Ours".into(), "95.81%".into()]);
        t.row(vec!["A-very-long-method-name".into(), "70.19%".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        // All pipe-rows have equal length.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn vs_paper_format() {
        assert_eq!(vs_paper(0.9345, 95.81), "93.45% (paper 95.81%)");
    }

    #[test]
    fn section_rows_render() {
        let mut t = Table::new("x", &["a", "b"]);
        t.section("UVSD");
        let s = t.render();
        assert!(s.contains("— UVSD —"));
    }
}
