//! Config, error type and the deterministic test RNG.

/// How a single generated case ended.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 because every case is
    /// deterministic here (re-runs add no new coverage).
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator: SplitMix64 seeded from the test's name,
/// so a failure always reproduces by re-running the same test.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("beta");
        assert_ne!(TestRng::for_test("alpha").next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
