//! In-tree stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (the build environment has no crate registry).
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro over `fn name(arg in strategy, ...) { body }`
//!   items, with an optional `#![proptest_config(...)]` header;
//! * range strategies for the primitive types and
//!   [`collection::vec`] with either a fixed length or a length range;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from real proptest, on purpose: inputs are drawn from a
//! deterministic per-test RNG (seeded from the test's name) instead of an
//! entropy seed, and failing cases are reported but **not shrunk**.  Both
//! keep CI runs exactly reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(16) + 256,
                    "property test {} rejected too many inputs via prop_assume!",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: $crate::test_runner::TestCaseResult =
                    (|| -> $crate::test_runner::TestCaseResult { $body Ok(()) })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "property test {} failed on case {}: {}",
                        stringify!($name),
                        __accepted + 1,
                        msg,
                    ),
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::test_runner::TestCaseError::Fail(
                        format!("assertion failed: {:?} == {:?}", l, r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::test_runner::TestCaseError::Fail(format!(
                        "assertion failed: {:?} != {:?}",
                        l, r
                    )));
                }
            }
        }
    };
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
