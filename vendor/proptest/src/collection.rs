//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: a fixed size or a half-open range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `vec(strategy, len)` / `vec(strategy, lo..hi)` — a `Vec` whose length is
/// drawn from `size` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_len_and_ranged_len() {
        let mut rng = TestRng::for_test("vec");
        let fixed = vec(0u32..10, 7).sample(&mut rng);
        assert_eq!(fixed.len(), 7);
        assert!(fixed.iter().all(|&x| x < 10));
        for _ in 0..100 {
            let ranged = vec(-1.0f32..1.0, 5..20).sample(&mut rng);
            assert!((5..20).contains(&ranged.len()));
        }
    }
}
