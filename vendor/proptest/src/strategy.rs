//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// Unlike real proptest there is no shrinking tree — `sample` draws one
/// concrete value from the deterministic test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                // unit_f64 is half-open; widen the top step so `hi` is
                // reachable (the bias is a single ulp, irrelevant here).
                let u = rng.unit_f64();
                (lo + u as $t * (hi - lo)).min(hi)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let a = (3u16..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-2i32..=2).sample(&mut rng);
            assert!((-2..=2).contains(&b));
            let c = (0.5f32..1.5).sample(&mut rng);
            assert!((0.5..1.5).contains(&c));
            let d = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
