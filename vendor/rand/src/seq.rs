//! Slice sampling helpers (`SliceRandom`), mirroring `rand::seq`.

use crate::{uniform_u64, Rng};

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle, uniform over permutations.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn shuffle_is_roughly_uniform() {
        // Position of element 0 after shuffling [0,1,2] should hit each slot.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let mut v = [0usize, 1, 2];
            v.shuffle(&mut rng);
            counts[v.iter().position(|&x| x == 0).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
