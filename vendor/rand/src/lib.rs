//! In-tree stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the (small) API subset it actually uses:
//!
//! * [`rngs::StdRng`] — a seedable, portable generator (xoshiro256++
//!   seeded through SplitMix64 — *not* rand's ChaCha12, but every seeded
//!   stream in this repo is internal, so only cross-platform determinism
//!   matters, and that holds: the stream is a pure function of the seed);
//! * [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`];
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Method names follow rand 0.9 (`random`, `random_range`).  Anything the
//! workspace does not call is deliberately absent.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, integers uniform over all bits).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`start..end`, unbiased).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Build from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 like rand does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step — the standard seed expander.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from their "standard" distribution.
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform draw from `[0, n)` by rejection sampling.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest multiple of n that fits in u64, minus one.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn floats_cover_the_interval_evenly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bins = [0usize; 10];
        for _ in 0..10_000 {
            bins[(rng.random::<f32>() * 10.0) as usize] += 1;
        }
        for &b in &bins {
            assert!((800..1200).contains(&b), "uneven bins: {bins:?}");
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = rng.random_range(0..7usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.random_range(-2.5f32..3.5);
            assert!((-2.5..3.5).contains(&x));
            let k = rng.random_range(5u64..=6);
            assert!((5..=6).contains(&k));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
