//! Named generators (only [`StdRng`] is provided).

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator: xoshiro256++ (Blackman &
/// Vigna 2019), seeded through SplitMix64.  Passes BigCrush, 2^128 period,
/// and — the property everything here actually relies on — the stream is a
/// pure, platform-independent function of the seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for slot in &mut s {
                *slot = crate::splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }

    #[test]
    fn seed_from_u64_differs_per_seed() {
        let outs: Vec<u64> = (0..16)
            .map(|s| StdRng::seed_from_u64(s).next_u64())
            .collect();
        let mut uniq = outs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), outs.len());
    }
}
