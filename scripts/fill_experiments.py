#!/usr/bin/env python3
"""Splice recorded results/*.txt into EXPERIMENTS.md placeholders."""
import os, re

sections = {
    "table1": "## Table I",
    "table2": "## Table II",
    "table3": "## Tables III & IV",   # combined block gets both files
    "table5": "## Tables V & VI",
    "table7": "## Table VII",
    "table8": "## Table VIII",
    "fig6": "## Figure 6",
    "fig7": "## Figure 7",
    "fig8": "## Figure 8",
}
combined = {"table3": ["table3", "table4"], "table5": ["table5", "table6"]}

md = open("EXPERIMENTS.md").read()
for key, header in sections.items():
    files = combined.get(key, [key])
    texts = []
    for f in files:
        p = f"results/{f}.txt"
        if os.path.exists(p) and os.path.getsize(p) > 0:
            texts.append(open(p).read().rstrip())
    if not texts:
        continue
    body = "\n\n".join(texts)
    # Replace the first ```text ...``` block after the header.
    idx = md.find(header)
    if idx < 0:
        continue
    start = md.find("```text", idx)
    end = md.find("```", start + 7)
    if start < 0 or end < 0:
        continue
    md = md[:start] + "```text\n" + body + "\n" + md[end:]
open("EXPERIMENTS.md", "w").write(md)
print("filled sections:", [k for k in sections if os.path.exists(f"results/{combined.get(k,[k])[0]}.txt") and os.path.getsize(f"results/{combined.get(k,[k])[0]}.txt") > 0])
