#!/usr/bin/env bash
# Chaos smoke: boot `serve` with a seeded fault plan armed
# (runtime::faults) and drive a closed-loop workload through servebench's
# retry policy. Asserts:
#
#  - the server survives the whole run — injected socket errors and worker
#    panics are absorbed per-request, never crashing the process;
#  - servebench finishes a clean sweep (every request eventually 200 via
#    retry-with-backoff) and every non-2xx body it saw along the way
#    followed the unified error schema `{"error":{"code","message"}}`;
#  - /metrics reports the injected-fault and resilience counters;
#  - a reload hit by the `reload.swap` fault rolls back to the last-good
#    registry and the server keeps serving identical responses;
#  - /admin/shutdown still drains cleanly with the plan armed.
#
# Usage: chaos_smoke.sh [--smoke]   (--smoke: fewer requests, CI-friendly)
set -euo pipefail

cd "$(dirname "$0")/.."

requests=400
concurrency=8
if [ "${1:-}" = "--smoke" ]; then
  requests=120
  concurrency=4
fi

cargo build --offline -q -p serve --bin serve --bin servebench

out="$(mktemp -d)"
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

# Low per-consult rates: most requests sail through, but over hundreds of
# consults the plan reliably fires. reload.swap is capped at one firing so
# the rollback path runs exactly once, on the first reload.  sched.step
# preempts a running request mid-chain — determinism makes the restart
# byte-identical, so the sweep still demands a clean result.
plan="seed=42;socket.read:error:0.02;socket.write:error:0.02;worker.exec:panic:0.02;sched.step:error:0.02;reload.swap:error:1x1"

predict='{"model":"uvsd_sim","seed":7,"input":{"spec":{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}'

echo "chaos_smoke: fault plan: $plan"
target/debug/serve --untrained --addr 127.0.0.1:0 --fault-plan "$plan" \
  >"$out/stdout" 2>"$out/stderr" &
pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's#^listening on http://##p' "$out/stdout" | head -n 1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "chaos_smoke: server never reported its address"; cat "$out/stderr"; exit 1; }
grep -q 'chaos: fault plan armed' "$out/stderr" \
  || { echo "chaos_smoke: server did not arm the plan"; cat "$out/stderr"; exit 1; }
echo "chaos_smoke: armed server at $addr"

# A curl that rides out injected socket faults: retry transport failures
# and severed responses (every endpoint probed here has a non-empty body,
# so an empty file means the response died on the wire).
req() { # req <output-file> <curl args...>
  local dst="$1"; shift
  local code=""
  for _ in $(seq 1 20); do
    if code="$(curl -s -o "$dst" -w '%{http_code}' --max-time 10 "$@")" && [ "$code" != 000 ]; then
      [ "$dst" = /dev/null ] || [ -s "$dst" ] && break
    fi
    sleep 0.1
  done
  echo "$code"
}

# The sweep: closed loop, every request must eventually succeed through
# retry-with-backoff; schema violations fail servebench outright.
target/debug/servebench --addr "$addr" --mode closed \
  --requests "$requests" --concurrency "$concurrency" \
  --retries 8 --backoff-ms 25 --seed 7 | tee "$out/bench.out" \
  || { echo "chaos_smoke: servebench sweep failed under faults"; cat "$out/stderr"; exit 1; }

# The server must have actually been hit: faults fired, none fatal.
code="$(req "$out/metrics" "http://$addr/metrics")"
[ "$code" = 200 ] || { echo "chaos_smoke: metrics returned $code"; exit 1; }
injected="$(awk '/^serve_faults_injected_total/ {print $2}' "$out/metrics")"
[ "${injected:-0}" -ge 1 ] || { echo "chaos_smoke: no faults injected (plan dead?)"; cat "$out/metrics"; exit 1; }
echo "chaos_smoke: survived with $injected faults injected" \
  "($(awk '/^serve_worker_panics_total/ {print $2}' "$out/metrics") worker panics isolated)"

# The sched.step fault must have preempted at least one running request —
# and the clean sweep above already proved preemption never changed bytes.
preempted="$(awk '/^serve_sched_preemptions_total/ {print $2}' "$out/metrics")"
[ "${preempted:-0}" -ge 1 ] || { echo "chaos_smoke: sched.step never preempted"; cat "$out/metrics"; exit 1; }
echo "chaos_smoke: $preempted scheduler preemptions absorbed"

# Reload rollback: the capped reload.swap fault fails the first reload,
# which must roll back to the last-good registry and keep serving.
code="$(req "$out/before.json" -X POST "http://$addr/v1/predict" -d "$predict")"
[ "$code" = 200 ] || { echo "chaos_smoke: pre-reload predict returned $code"; exit 1; }
code="$(req "$out/reload.json" -X POST "http://$addr/admin/reload" -d '{}')"
[ "$code" = 500 ] || { echo "chaos_smoke: faulted reload returned $code (want 500)"; cat "$out/reload.json"; exit 1; }
jq -e '.error.code == "reload_failed"' "$out/reload.json" >/dev/null \
  || { echo "chaos_smoke: reload error schema violated"; cat "$out/reload.json"; exit 1; }
code="$(req "$out/after.json" -X POST "http://$addr/v1/predict" -d "$predict")"
[ "$code" = 200 ] || { echo "chaos_smoke: post-rollback predict returned $code"; exit 1; }
cmp -s "$out/before.json" "$out/after.json" \
  || { echo "chaos_smoke: responses diverged after rollback"; exit 1; }
code="$(req "$out/metrics" "http://$addr/metrics")"
rollbacks="$(awk '/^serve_reload_rollbacks_total/ {print $2}' "$out/metrics")"
[ "${rollbacks:-0}" -ge 1 ] || { echo "chaos_smoke: rollback not counted"; cat "$out/metrics"; exit 1; }
echo "chaos_smoke: reload rollback ok (byte-identical serving preserved)"

# Clean drain with the plan still armed.
for _ in $(seq 1 20); do
  req /dev/null -X POST "http://$addr/admin/shutdown" -d '{}' >/dev/null
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "chaos_smoke: server did not exit after /admin/shutdown"
  exit 1
fi
wait "$pid" 2>/dev/null || true
pid=""
grep -q 'faults injected' "$out/stderr" \
  || { echo "chaos_smoke: exit summary missing the fault count"; cat "$out/stderr"; exit 1; }
echo "chaos_smoke: $(grep 'served' "$out/stderr" | tail -n 1)"
grep -E 'issued=|latency ms' "$out/bench.out" | sed 's/^/chaos_smoke: sweep /'
echo "chaos_smoke: PASS"
