#!/bin/bash
set -u
cd /root/repo
python3 scripts/fill_experiments.py
cargo test --workspace --release 2>&1 | tee /root/repo/test_output.txt | grep -E "test result|FAILED|error" | tail -30
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -30
echo FINALIZE-DONE
