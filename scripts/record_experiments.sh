#!/bin/bash
# Record every table/figure at default scale into results/.
set -u
cd /root/repo
run() {
  name=$1; shift
  echo "=== $name start $(date +%H:%M:%S) ==="
  timeout 1500 cargo run --release -p bench-suite --bin "$name" -- "$@" > "results/$name.txt" 2> "results/$name.log"
  echo "=== $name done rc=$? $(date +%H:%M:%S) ==="
}
run table1 --seed 7
run table3 --seed 7 --samples 10
run table5 --seed 7 --samples 10
run fig6   --seed 7 --samples 2
run table2 --seed 7 --samples 10
run table8 --seed 7
run table7 --seed 7
run fig8   --seed 7
run fig7   --seed 7 --samples 8
run table4 --seed 7 --samples 10
run table6 --seed 7 --samples 10
echo ALL DONE
