#!/usr/bin/env bash
# Serving-latency benchmark: the same open-loop short/long request mix
# against the classic window micro-batcher and the continuous-batching
# scheduler, at equal offered load.  Writes the combined JSON record to
# BENCH_serve.json at the repository root.
#
#   scripts/bench_serve.sh           # full sweep → BENCH_serve.json
#   scripts/bench_serve.sh --smoke   # short run for CI →
#                                    # target/BENCH_serve.smoke.json
#
# servebench's --mix mode doubles as a determinism canary: every request
# in a pool class must return byte-identical bodies, so both runs also
# gate the scheduler's reproducibility contract.  The full run addition-
# ally asserts the headline claim — continuous p95 ≤ window p95.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline -q -p serve --bin serve --bin servebench

if [ "${1:-}" = "--smoke" ]; then
  rate=30; duration=2; long_repeats=6; out=target/BENCH_serve.smoke.json; gate_p95=0
else
  # Past the window batcher's saturation point (drain-then-admit stalls
  # behind long requests) but well inside the continuous scheduler's.
  rate=150; duration=10; long_repeats=8; out=BENCH_serve.json; gate_p95=1
fi
mix=3:1

tmp="$(mktemp -d)"
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

# Boot a server under the given scheduler policy, drive the mix through
# it, record the run, and shut it down.
run_policy() {
  policy="$1"
  target/release/serve --untrained --addr 127.0.0.1:0 \
    --sched "$policy" --max-running 8 \
    >"$tmp/$policy.out" 2>"$tmp/$policy.err" &
  pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's#^listening on http://##p' "$tmp/$policy.out" | head -n 1)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "bench_serve: $policy server never reported its address"; cat "$tmp/$policy.err"; exit 1; }
  echo "== policy: $policy (rate=$rate/s duration=${duration}s mix=$mix x$long_repeats) =="
  target/release/servebench --addr "$addr" --mode open \
    --rate "$rate" --duration-s "$duration" \
    --mix "$mix" --long-repeats "$long_repeats" --retries 2 \
    --label "$policy" --out "$tmp/$policy.json"
  curl -s -X POST "http://$addr/admin/shutdown" -d '{}' >/dev/null
  for _ in $(seq 1 100); do kill -0 "$pid" 2>/dev/null || break; sleep 0.1; done
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  pid=""
}

run_policy window
run_policy continuous

mkdir -p "$(dirname "$out")"
printf '{"bench":"serve","mode":"open","rate":%s,"duration_s":%s,"mix":"%s","long_repeats":%s,"window":%s,"continuous":%s}\n' \
  "$rate" "$duration" "$mix" "$long_repeats" \
  "$(cat "$tmp/window.json")" "$(cat "$tmp/continuous.json")" >"$out"
echo "bench_serve: wrote $out"
echo "bench_serve: p95 window=$(jq .window.latency_ms.p95 "$out")ms continuous=$(jq .continuous.latency_ms.p95 "$out")ms"

if [ "$gate_p95" = 1 ]; then
  jq -e '.continuous.latency_ms.p95 <= .window.latency_ms.p95' "$out" >/dev/null \
    || { echo "bench_serve: FAIL — continuous p95 regressed vs window"; exit 1; }
  echo "bench_serve: continuous p95 beats window at equal offered load. PASS"
fi
