#!/usr/bin/env bash
# End-to-end smoke test of the inference server, in two acts:
#
#  1. Boot `serve` with untrained tiny models (fast), issue one predict and
#     one explain over real HTTP, assert 200s with well-formed JSON and
#     that non-2xx responses carry the unified error schema
#     `{"error":{"code","message"}}`, then shut down via POST
#     /admin/shutdown and verify the process exits.
#
#  2. The checkpoint cycle: train smoke-scale pipelines and save them as
#     SRCR1 artifacts (`artifacts --save-artifacts`), boot
#     `serve --model-dir` (zero training at startup), hit
#     predict/explain/models/reload, and shut down.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --offline -q -p serve --bin serve
cargo build --offline -q --release -p bench-suite --bin artifacts

out="$(mktemp -d)"
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

predict='{"model":"uvsd_sim","seed":7,"input":{"spec":{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}'
explain='{"model":"rsl_sim","seed":7,"method":"lime","budget":16,"input":{"spec":{"subject_seed":3,"condition":"unstressed","sample_id":2,"num_frames":4}}}'
bad_model='{"model":"nope","seed":1,"input":{"spec":{"subject_seed":1,"condition":"stressed","sample_id":1,"num_frames":4}}}'

# Boot a server, wait for its "listening on" line, and set $addr.
boot() {
  "$@" >"$out/stdout" 2>"$out/stderr" &
  pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's#^listening on http://##p' "$out/stdout" | head -n 1)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "serve_smoke: server never reported its address"; cat "$out/stderr"; exit 1; }
  echo "serve_smoke: server at $addr"
}

# POST /admin/shutdown and verify the process exits.
shutdown() {
  curl -s -X POST "http://$addr/admin/shutdown" -d '{}' >/dev/null
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "serve_smoke: server did not exit after /admin/shutdown"
    exit 1
  fi
  wait "$pid" 2>/dev/null || true
  pid=""
}

# Predict + explain against $addr; every 2xx body is shape-checked.
probe() {
  code="$(curl -s -o "$out/predict.json" -w '%{http_code}' -X POST "http://$addr/v1/predict" -d "$predict")"
  [ "$code" = 200 ] || { echo "serve_smoke: predict returned $code"; cat "$out/predict.json"; exit 1; }
  jq -e '.assessment and .score != null and .highlighted_regions' "$out/predict.json" >/dev/null
  echo "serve_smoke: predict ok ($(jq -r .assessment "$out/predict.json"), score $(jq -r .score "$out/predict.json"))"

  code="$(curl -s -o "$out/explain.json" -w '%{http_code}' -X POST "http://$addr/v1/explain" -d "$explain")"
  [ "$code" = 200 ] || { echo "serve_smoke: explain returned $code"; cat "$out/explain.json"; exit 1; }
  jq -e '.segments > 0 and (.scores | length) == .segments' "$out/explain.json" >/dev/null
  echo "serve_smoke: explain ok ($(jq -r .segments "$out/explain.json") segments)"

  # Non-2xx responses carry the unified error schema with a typed code.
  code="$(curl -s -o "$out/err.json" -w '%{http_code}' -X POST "http://$addr/v1/predict" -d "$bad_model")"
  [ "$code" = 404 ] || { echo "serve_smoke: unknown model returned $code"; exit 1; }
  jq -e '.error.code == "model_not_found" and (.error.message | type) == "string"' "$out/err.json" >/dev/null \
    || { echo "serve_smoke: error schema violated"; cat "$out/err.json"; exit 1; }
  echo "serve_smoke: error schema ok ($(jq -r .error.code "$out/err.json"))"
}

echo "== act 1: untrained models =="
boot target/debug/serve --untrained --addr 127.0.0.1:0
probe
curl -s "http://$addr/metrics" | grep -q 'serve_predict_requests_total 1' \
  || { echo "serve_smoke: metrics missing the predict counter"; exit 1; }
shutdown
echo "serve_smoke: clean shutdown (untrained)"

echo "== act 2: SRCR1 artifact cycle =="
target/release/artifacts --scale smoke --seed 7 --save-artifacts "$out/models"
ls -l "$out/models"
boot target/debug/serve --model-dir "$out/models" --addr 127.0.0.1:0
grep -q 'models ready in' "$out/stderr" \
  || { echo "serve_smoke: no cold-start report"; cat "$out/stderr"; exit 1; }
echo "serve_smoke: $(grep 'models ready in' "$out/stderr")"

jq -e '[.models[].source] | all(startswith("artifact:"))' <(curl -s "http://$addr/v1/models") >/dev/null \
  || { echo "serve_smoke: /v1/models does not report artifact sources"; exit 1; }
echo "serve_smoke: models ok ($(curl -s "http://$addr/v1/models" | jq -r '[.models[].name] | join(", ")'))"
probe

# Hot reload re-reads the artifact directory and keeps serving.
jq -e '.reloaded == true' <(curl -s -X POST "http://$addr/admin/reload" -d '{}') >/dev/null \
  || { echo "serve_smoke: reload failed"; exit 1; }
curl -s "http://$addr/metrics" | grep -q 'serve_reloads_total 1' \
  || { echo "serve_smoke: metrics missing the reload counter"; exit 1; }
echo "serve_smoke: reload ok"
probe
shutdown
echo "serve_smoke: clean shutdown (artifacts). PASS"
