#!/usr/bin/env bash
# End-to-end smoke test of the inference server: boot `serve` on an
# ephemeral port with untrained tiny models (fast), issue one predict and
# one explain over real HTTP, assert 200s with well-formed JSON, then shut
# down cleanly via POST /admin/shutdown and verify the process exits.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --offline -q -p serve --bin serve

out="$(mktemp -d)"
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

target/debug/serve --untrained --addr 127.0.0.1:0 >"$out/stdout" 2>"$out/stderr" &
pid=$!

# The binary prints "listening on http://HOST:PORT" once bound.
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's#^listening on http://##p' "$out/stdout" | head -n 1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve_smoke: server never reported its address"; cat "$out/stderr"; exit 1; }
echo "serve_smoke: server at $addr"

predict='{"model":"uvsd_sim","seed":7,"input":{"spec":{"subject_seed":3,"condition":"stressed","sample_id":1,"num_frames":4}}}'
explain='{"model":"rsl_sim","seed":7,"method":"lime","budget":16,"input":{"spec":{"subject_seed":3,"condition":"unstressed","sample_id":2,"num_frames":4}}}'

code="$(curl -s -o "$out/predict.json" -w '%{http_code}' -X POST "http://$addr/v1/predict" -d "$predict")"
[ "$code" = 200 ] || { echo "serve_smoke: predict returned $code"; cat "$out/predict.json"; exit 1; }
jq -e '.assessment and .score != null and .highlighted_regions' "$out/predict.json" >/dev/null
echo "serve_smoke: predict ok ($(jq -r .assessment "$out/predict.json"), score $(jq -r .score "$out/predict.json"))"

code="$(curl -s -o "$out/explain.json" -w '%{http_code}' -X POST "http://$addr/v1/explain" -d "$explain")"
[ "$code" = 200 ] || { echo "serve_smoke: explain returned $code"; cat "$out/explain.json"; exit 1; }
jq -e '.segments > 0 and (.scores | length) == .segments' "$out/explain.json" >/dev/null
echo "serve_smoke: explain ok ($(jq -r .segments "$out/explain.json") segments)"

curl -s "http://$addr/metrics" | grep -q 'serve_predict_requests_total 1' \
  || { echo "serve_smoke: metrics missing the predict counter"; exit 1; }

curl -s -X POST "http://$addr/admin/shutdown" -d '{}' >/dev/null
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "serve_smoke: server did not exit after /admin/shutdown"
  exit 1
fi
wait "$pid" 2>/dev/null || true
pid=""
echo "serve_smoke: clean shutdown. PASS"
