#!/usr/bin/env bash
# Measure raw kernel-tier throughput (GFLOP/s): the branch-free
# register-blocked fast tier against the exact scalar oracle, on matmul
# shapes drawn from the real model configs.  Writes the JSON record to
# BENCH_kernels.json at the repository root.
#
#   scripts/bench_kernels.sh           # full run → BENCH_kernels.json
#   scripts/bench_kernels.sh --smoke   # shorter reps, for CI →
#                                      # target/BENCH_kernels.smoke.json
#
# kernelbench itself verifies, before timing anything, that the fast tier
# is bit-identical to the oracle and the q8 tier is inside its documented
# error bound — and it exits non-zero if the fast tier fails to beat the
# oracle on the gated (large tape + non-micro decode) shapes.  Full runs
# additionally assert the >= 2x criterion on the large decode shapes.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline -q -p bench-suite --bin kernelbench

if [ "${1:-}" = "--smoke" ]; then
  exec target/release/kernelbench --smoke --out target/BENCH_kernels.smoke.json
fi

exec target/release/kernelbench --out BENCH_kernels.json
