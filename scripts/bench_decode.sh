#!/usr/bin/env bash
# Measure incremental-decode throughput: KV-cached InferSession vs the
# naive full-recompute path, at the experiment model scale.  Writes the
# JSON record to BENCH_decode.json at the repository root.
#
#   scripts/bench_decode.sh           # full run → BENCH_decode.json
#   scripts/bench_decode.sh --smoke   # tiny scale, short steps, for CI →
#                                     # target/BENCH_decode.smoke.json
#
# decodebench itself asserts the two paths produce bit-identical logits
# before reporting a single number, and fails if the cached path is not
# an end-to-end win — so this doubles as an equivalence gate.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --offline -q -p bench-suite --bin decodebench

if [ "${1:-}" = "--smoke" ]; then
  exec target/release/decodebench --scale tiny --steps 4,16 --pad 8 \
    --out target/BENCH_decode.smoke.json
fi

exec target/release/decodebench --scale small --steps 8,32,64 --pad 24 \
  --out BENCH_decode.json
