#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test --workspace --offline -q

echo "==> cargo test -p serve -q (inference server: unit + proptest + loopback)"
cargo test -p serve --offline -q

echo "==> scripts/serve_smoke.sh (untrained boot + SRCR1 artifact cycle)"
bash scripts/serve_smoke.sh

echo "==> scripts/bench_kernels.sh --smoke (fast-tier equivalence + GFLOP/s gate)"
bash scripts/bench_kernels.sh --smoke

echo "==> scripts/bench_decode.sh --smoke (cached-decode equivalence + win)"
bash scripts/bench_decode.sh --smoke

echo "==> scripts/bench_serve.sh --smoke (window vs continuous + determinism canary)"
bash scripts/bench_serve.sh --smoke

echo "==> scripts/chaos_smoke.sh --smoke (fault-injected sweep + reload rollback)"
bash scripts/chaos_smoke.sh --smoke

echo "CI green."
