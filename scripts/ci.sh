#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test --workspace --offline -q

echo "CI green."
