//! `self-refine-stress` — interpretable video-based stress detection with
//! self-refine chain reasoning (reproduction of Dai et al., ICDE 2025).
//!
//! This facade crate re-exports the workspace so examples and downstream
//! users have a single dependency:
//!
//! * [`chain_reason`] — the paper's contribution: the
//!   `Describe → Assess → Highlight` pipeline, the self-refinement loops
//!   with DPO, Algorithm 1, the ablation variants and test-time refinement;
//! * [`lfm`] — the trainable vision-language foundation-model simulator;
//! * [`videosynth`] — the synthetic facial-video world standing in for the
//!   UVSD / RSL / DISFA+ corpora;
//! * [`facs`] — action units, facial regions and the description language;
//! * [`explainers`] — LIME / KernelSHAP / SOBOL baselines;
//! * [`baselines`] — the Table I competitor methods;
//! * [`retrieval`] — in-context example retrieval;
//! * [`evalkit`] — metrics, cross validation and the faithfulness protocol;
//! * [`runtime`] — the deterministic parallel evaluation runtime (worker
//!   pool, per-item seed streams, mask-keyed evaluation cache);
//! * [`tinynn`] — the from-scratch autodiff engine underneath it all.
//!
//! Quickstart: see `examples/quickstart.rs`, or:
//!
//! ```no_run
//! use self_refine_stress::prelude::*;
//!
//! let ctx_seed = 7;
//! let au = Dataset::generate(DatasetProfile::disfa(Scale::Smoke), ctx_seed);
//! let stress = Dataset::generate(DatasetProfile::uvsd(Scale::Smoke), ctx_seed);
//! let mut base = Lfm::new(ModelConfig::tiny(), ctx_seed);
//! lfm::pretrain::pretrain(&mut base, &CapabilityProfile::base().scaled(0.2), ctx_seed);
//! let (pipeline, report) = train_pipeline(
//!     base,
//!     PipelineConfig::smoke(),
//!     &au.samples,
//!     &stress.samples,
//!     Variant::Full,
//! );
//! println!("trained: {report:?}");
//! let out = pipeline.predict(&stress.samples[0], 0);
//! println!("{}", facs::describe::render_description(out.description));
//! ```

pub use baselines;
pub use chain_reason;
pub use evalkit;
pub use explainers;
pub use facs;
pub use lfm;
pub use retrieval;
pub use runtime;
pub use tinynn;
pub use videosynth;

/// The most common imports in one place.
pub mod prelude {
    pub use chain_reason::{
        train_pipeline, ChainOutput, PipelineConfig, StressPipeline, TrainReport, Variant,
    };
    pub use facs::au::{ActionUnit, AuSet};
    pub use facs::describe::render_description;
    pub use lfm::pretrain::CapabilityProfile;
    pub use lfm::{Lfm, ModelConfig};
    pub use videosynth::dataset::{Dataset, DatasetProfile, Scale};
    pub use videosynth::video::{StressLabel, VideoSample};
}
